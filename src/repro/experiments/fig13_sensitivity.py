"""Fig. 13 reproduction: sensitivity to measurement latency and operation fidelities.

The paper fixes a 3x3 array of 7x7 square chiplets and sweeps three parameters
one at a time:

* (a) the measurement latency relative to a CNOT (1 .. 20) — affects the
  *depth* improvement, which decreases roughly linearly but stays positive up
  to a latency of ~20;
* (b) the measurement error rate relative to an on-chip CNOT (0.5 .. 5) —
  affects the *eff_CNOT* improvement, decreasing with noisier measurements;
* (c) the cross-chip CNOT error rate relative to an on-chip CNOT (4 .. 9) —
  affects the eff_CNOT improvement, increasing with noisier cross-chip links.

Both compilers' outputs are compiled once and re-scored under each swept noise
model: the emitted circuits do not depend on the error rates, and the paper's
own sweep varies only the metric weights.  The engine's ``"sensitivity"``
executor implements exactly that protocol, so one engine job covers one
benchmark's three panels and the whole figure caches like any other.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from .engine import Job, experiment_checkpoint_meta, noise_to_items, run_jobs
from .runner import AnyRecord, resolve_compilers
from .settings import BENCHMARK_NAMES

__all__ = [
    "SensitivityResult",
    "jobs_for_fig13",
    "run_fig13",
    "sensitivity_results_from_records",
    "format_fig13",
    "MEAS_LATENCIES",
    "MEAS_ERROR_RATIOS",
    "CROSS_ERROR_RATIOS",
]

#: The paper's swept values.
MEAS_LATENCIES: tuple[float, ...] = (1, 2, 4, 8, 12, 16, 20)
MEAS_ERROR_RATIOS: tuple[float, ...] = (0.5, 1.0, 2.0, 3.0, 4.0, 5.0)
CROSS_ERROR_RATIOS: tuple[float, ...] = (4.0, 5.0, 6.0, 7.0, 8.0, 9.0)

#: Device per scale tier (the paper uses 7x7 chiplets in a 3x3 array).
_SCALE_DEVICE = {
    "small": ("square", 4, 2, 2),
    "medium": ("square", 5, 2, 3),
    "paper": ("square", 7, 3, 3),
}


@dataclass
class SensitivityResult:
    """Improvement series of one benchmark for the three swept parameters."""

    benchmark: str
    architecture: str
    num_data_qubits: int
    #: (measurement latency, depth improvement)
    depth_vs_latency: list[tuple[float, float]]
    #: (meas error ratio, eff_CNOT improvement)
    eff_vs_meas_error: list[tuple[float, float]]
    #: (cross-chip error ratio, eff_CNOT improvement)
    eff_vs_cross_error: list[tuple[float, float]]


def jobs_for_fig13(
    *,
    scale: str = "small",
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    meas_latencies: Sequence[float] = MEAS_LATENCIES,
    meas_error_ratios: Sequence[float] = MEAS_ERROR_RATIOS,
    cross_error_ratios: Sequence[float] = CROSS_ERROR_RATIOS,
    base_noise: NoiseModel = DEFAULT_NOISE,
    seed: int = 0,
    compilers: Sequence[str] | None = None,
) -> list[Job]:
    """One ``"sensitivity"`` job per benchmark, carrying all three sweeps."""
    if scale not in _SCALE_DEVICE:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(_SCALE_DEVICE)}")
    structure, width, rows, cols = _SCALE_DEVICE[scale]
    params = (
        ("meas_latencies", tuple(float(v) for v in meas_latencies)),
        ("meas_error_ratios", tuple(float(v) for v in meas_error_ratios)),
        ("cross_error_ratios", tuple(float(v) for v in cross_error_ratios)),
    )
    noise_items = noise_to_items(base_noise)
    compiler_names = resolve_compilers(compilers)
    return [
        Job(
            benchmark=name,
            kind="sensitivity",
            structure=structure,
            chiplet_width=width,
            rows=rows,
            cols=cols,
            seed=seed,
            noise=noise_items,
            params=params,
            compilers=compiler_names,
        )
        for name in benchmarks
    ]


def sensitivity_results_from_records(
    records: Sequence[AnyRecord],
) -> list[SensitivityResult]:
    """Decode the ``<series>@<value>`` extras of sensitivity records."""

    def series(record: AnyRecord, prefix: str) -> list[tuple[float, float]]:
        marker = prefix + "@"
        points = [
            (float(key[len(marker):]), value)
            for key, value in record.extra.items()
            if key.startswith(marker)
        ]
        points.sort()
        return points

    return [
        SensitivityResult(
            benchmark=record.benchmark,
            architecture=record.architecture,
            num_data_qubits=record.num_data_qubits,
            depth_vs_latency=series(record, "depth_vs_latency"),
            eff_vs_meas_error=series(record, "eff_vs_meas_error"),
            eff_vs_cross_error=series(record, "eff_vs_cross_error"),
        )
        for record in records
    ]


def run_fig13(
    *,
    scale: str = "small",
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    meas_latencies: Sequence[float] = MEAS_LATENCIES,
    meas_error_ratios: Sequence[float] = MEAS_ERROR_RATIOS,
    cross_error_ratios: Sequence[float] = CROSS_ERROR_RATIOS,
    base_noise: NoiseModel = DEFAULT_NOISE,
    seed: int = 0,
    compilers: Sequence[str] | None = None,
    workers: int = 1,
    cache=None,
    policy=None,
    checkpoint=None,
) -> list[SensitivityResult]:
    """Regenerate the three panels of Fig. 13."""
    jobs = jobs_for_fig13(
        scale=scale,
        benchmarks=benchmarks,
        meas_latencies=meas_latencies,
        meas_error_ratios=meas_error_ratios,
        cross_error_ratios=cross_error_ratios,
        base_noise=base_noise,
        seed=seed,
        compilers=compilers,
    )
    records = run_jobs(
        jobs,
        workers=workers,
        cache=cache,
        policy=policy,
        checkpoint=checkpoint,
        checkpoint_meta=experiment_checkpoint_meta(
            "fig13", scale, benchmarks, seed, cache, compilers=resolve_compilers(compilers)
        ),
    )
    return sensitivity_results_from_records(records)


def format_fig13(results: Sequence[SensitivityResult]) -> str:
    """Text rendering of the three sensitivity panels."""
    lines = ["Fig. 13: sensitivity to measurement latency and operation fidelities"]
    lines.append("(a) depth improvement vs measurement latency")
    for r in results:
        series = " ".join(f"{lat:g}:{impr:+.1%}" for lat, impr in r.depth_vs_latency)
        lines.append(f"  {r.benchmark:<6} {series}")
    lines.append("(b) eff_CNOT improvement vs measurement error ratio")
    for r in results:
        series = " ".join(f"{ratio:g}:{impr:+.1%}" for ratio, impr in r.eff_vs_meas_error)
        lines.append(f"  {r.benchmark:<6} {series}")
    lines.append("(c) eff_CNOT improvement vs cross-chip error ratio")
    for r in results:
        series = " ".join(f"{ratio:g}:{impr:+.1%}" for ratio, impr in r.eff_vs_cross_error)
        lines.append(f"  {r.benchmark:<6} {series}")
    return "\n".join(lines)
