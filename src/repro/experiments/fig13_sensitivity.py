"""Fig. 13 reproduction: sensitivity to measurement latency and operation fidelities.

The paper fixes a 3x3 array of 7x7 square chiplets and sweeps three parameters
one at a time:

* (a) the measurement latency relative to a CNOT (1 .. 20) — affects the
  *depth* improvement, which decreases roughly linearly but stays positive up
  to a latency of ~20;
* (b) the measurement error rate relative to an on-chip CNOT (0.5 .. 5) —
  affects the *eff_CNOT* improvement, decreasing with noisier measurements;
* (c) the cross-chip CNOT error rate relative to an on-chip CNOT (4 .. 9) —
  affects the eff_CNOT improvement, increasing with noisier cross-chip links.

Both compilers' outputs are compiled once and re-scored under each swept noise
model: the emitted circuits do not depend on the error rates, and the paper's
own sweep varies only the metric weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..baseline import BaselineCompiler
from ..compiler import MechCompiler
from ..hardware.array import ChipletArray
from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from ..metrics import improvement
from ..programs import build_benchmark
from .settings import BENCHMARK_NAMES

__all__ = [
    "SensitivityResult",
    "run_fig13",
    "format_fig13",
    "MEAS_LATENCIES",
    "MEAS_ERROR_RATIOS",
    "CROSS_ERROR_RATIOS",
]

#: The paper's swept values.
MEAS_LATENCIES: Tuple[float, ...] = (1, 2, 4, 8, 12, 16, 20)
MEAS_ERROR_RATIOS: Tuple[float, ...] = (0.5, 1.0, 2.0, 3.0, 4.0, 5.0)
CROSS_ERROR_RATIOS: Tuple[float, ...] = (4.0, 5.0, 6.0, 7.0, 8.0, 9.0)

#: Device per scale tier (the paper uses 7x7 chiplets in a 3x3 array).
_SCALE_DEVICE = {
    "small": ("square", 4, 2, 2),
    "medium": ("square", 5, 2, 3),
    "paper": ("square", 7, 3, 3),
}


@dataclass
class SensitivityResult:
    """Improvement series of one benchmark for the three swept parameters."""

    benchmark: str
    architecture: str
    num_data_qubits: int
    #: (measurement latency, depth improvement)
    depth_vs_latency: List[Tuple[float, float]]
    #: (meas error ratio, eff_CNOT improvement)
    eff_vs_meas_error: List[Tuple[float, float]]
    #: (cross-chip error ratio, eff_CNOT improvement)
    eff_vs_cross_error: List[Tuple[float, float]]


def run_fig13(
    *,
    scale: str = "small",
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    meas_latencies: Sequence[float] = MEAS_LATENCIES,
    meas_error_ratios: Sequence[float] = MEAS_ERROR_RATIOS,
    cross_error_ratios: Sequence[float] = CROSS_ERROR_RATIOS,
    base_noise: NoiseModel = DEFAULT_NOISE,
    seed: int = 0,
) -> List[SensitivityResult]:
    """Regenerate the three panels of Fig. 13."""
    if scale not in _SCALE_DEVICE:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(_SCALE_DEVICE)}")
    structure, width, rows, cols = _SCALE_DEVICE[scale]
    array = ChipletArray(structure, width, rows, cols)
    mech = MechCompiler(array, noise=base_noise)
    baseline = BaselineCompiler(array.topology, noise=base_noise)
    results: List[SensitivityResult] = []
    for name in benchmarks:
        circuit = build_benchmark(name, mech.num_data_qubits, seed=seed) if name.upper() != "QFT" else build_benchmark(name, mech.num_data_qubits)
        mech_result = mech.compile(circuit)
        baseline_result = baseline.compile(circuit)

        depth_series: List[Tuple[float, float]] = []
        for latency in meas_latencies:
            noise = base_noise.with_ratios(meas_latency=float(latency))
            depth_series.append(
                (
                    float(latency),
                    improvement(
                        baseline_result.metrics(noise).depth,
                        mech_result.metrics(noise).depth,
                    ),
                )
            )

        meas_series: List[Tuple[float, float]] = []
        for ratio in meas_error_ratios:
            noise = base_noise.with_ratios(meas_on_ratio=float(ratio))
            meas_series.append(
                (
                    float(ratio),
                    improvement(
                        baseline_result.metrics(noise).eff_cnots,
                        mech_result.metrics(noise).eff_cnots,
                    ),
                )
            )

        cross_series: List[Tuple[float, float]] = []
        for ratio in cross_error_ratios:
            noise = base_noise.with_ratios(cross_on_ratio=float(ratio))
            cross_series.append(
                (
                    float(ratio),
                    improvement(
                        baseline_result.metrics(noise).eff_cnots,
                        mech_result.metrics(noise).eff_cnots,
                    ),
                )
            )

        results.append(
            SensitivityResult(
                benchmark=name.upper(),
                architecture=array.topology.name,
                num_data_qubits=circuit.num_qubits,
                depth_vs_latency=depth_series,
                eff_vs_meas_error=meas_series,
                eff_vs_cross_error=cross_series,
            )
        )
    return results


def format_fig13(results: Sequence[SensitivityResult]) -> str:
    """Text rendering of the three sensitivity panels."""
    lines = ["Fig. 13: sensitivity to measurement latency and operation fidelities"]
    lines.append("(a) depth improvement vs measurement latency")
    for r in results:
        series = " ".join(f"{lat:g}:{impr:+.1%}" for lat, impr in r.depth_vs_latency)
        lines.append(f"  {r.benchmark:<6} {series}")
    lines.append("(b) eff_CNOT improvement vs measurement error ratio")
    for r in results:
        series = " ".join(f"{ratio:g}:{impr:+.1%}" for ratio, impr in r.eff_vs_meas_error)
        lines.append(f"  {r.benchmark:<6} {series}")
    lines.append("(c) eff_CNOT improvement vs cross-chip error ratio")
    for r in results:
        series = " ".join(f"{ratio:g}:{impr:+.1%}" for ratio, impr in r.eff_vs_cross_error)
        lines.append(f"  {r.benchmark:<6} {series}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=sorted(_SCALE_DEVICE))
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    print(format_fig13(run_fig13(scale=args.scale, seed=args.seed)))


if __name__ == "__main__":  # pragma: no cover
    main()
