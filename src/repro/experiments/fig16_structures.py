"""Fig. 16 reproduction: generality across chiplet coupling structures.

The paper compiles the four benchmarks on square, hexagon, heavy-square and
heavy-hexagon chiplet arrays (the Table 1 rows sq-360 / hex-312 /
heavy-sq-351 / heavy-hex-336) and shows MECH achieves similar normalised
improvements on all of them, demonstrating that the highway mechanism does not
depend on a particular coupling structure.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from .engine import Job, experiment_checkpoint_meta, noise_to_items, run_jobs
from .runner import AnyRecord, resolve_compilers
from .settings import BENCHMARK_NAMES, TABLE1_SETTINGS, ArchitectureSetting, scaled_setting

__all__ = [
    "jobs_for_fig16",
    "run_fig16",
    "normalized_by_structure",
    "format_fig16",
    "FIG16_SETTINGS",
]

#: The four Table 1 rows the figure uses, in the paper's order.
FIG16_SETTINGS: tuple[str, ...] = (
    "program-360",   # square
    "program-312",   # hexagon
    "program-351",   # heavy square
    "program-336",   # heavy hexagon
)


def jobs_for_fig16(
    *,
    scale: str = "small",
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    settings: Sequence[ArchitectureSetting] | None = None,
    noise: NoiseModel = DEFAULT_NOISE,
    seed: int = 0,
    compilers: Sequence[str] | None = None,
) -> list[Job]:
    """One job per (coupling structure, benchmark) of the Fig. 16 sweep."""
    chosen = (
        list(settings)
        if settings is not None
        else [scaled_setting(TABLE1_SETTINGS[key], scale) for key in FIG16_SETTINGS]
    )
    noise_items = noise_to_items(noise)
    compiler_names = resolve_compilers(compilers)
    return [
        Job(
            benchmark=name,
            structure=setting.structure,
            chiplet_width=setting.chiplet_width,
            rows=setting.rows,
            cols=setting.cols,
            cross_links_per_edge=setting.cross_links_per_edge,
            highway_density=setting.highway_density,
            seed=seed,
            noise=noise_items,
            tags=(("structure", setting.structure),),
            compilers=compiler_names,
        )
        for setting in chosen
        for name in benchmarks
    ]


def run_fig16(
    *,
    scale: str = "small",
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    settings: Sequence[ArchitectureSetting] | None = None,
    noise: NoiseModel = DEFAULT_NOISE,
    seed: int = 0,
    compilers: Sequence[str] | None = None,
    workers: int = 1,
    cache=None,
    policy=None,
    checkpoint=None,
) -> list[AnyRecord]:
    """Regenerate Fig. 16: one record per (coupling structure, benchmark)."""
    jobs = jobs_for_fig16(
        scale=scale,
        benchmarks=benchmarks,
        settings=settings,
        noise=noise,
        seed=seed,
        compilers=compilers,
    )
    return run_jobs(
        jobs,
        workers=workers,
        cache=cache,
        policy=policy,
        checkpoint=checkpoint,
        checkpoint_meta=experiment_checkpoint_meta(
            "fig16", scale, benchmarks, seed, cache, compilers=resolve_compilers(compilers)
        ),
    )


def normalized_by_structure(
    records: Sequence[AnyRecord],
) -> dict[str, list[tuple[str, float, float]]]:
    """Per-benchmark series ``(structure, normalised depth, normalised eff_CNOTs)``."""
    series: dict[str, list[tuple[str, float, float]]] = {}
    for record in records:
        structure = str(record.extra.get("structure", record.architecture))
        series.setdefault(record.benchmark, []).append(
            (structure, record.normalized_depth, record.normalized_eff_cnots)
        )
    return series


def format_fig16(records: Sequence[AnyRecord]) -> str:
    """Text rendering of the two normalised-metric panels of Fig. 16."""
    series = normalized_by_structure(records)
    lines = ["Fig. 16: normalised performance across coupling structures"]
    lines.append(
        f"{'benchmark':<10} {'structure':<15} {'depth (MECH/base)':>18} {'eff (MECH/base)':>16}"
    )
    lines.append("-" * 62)
    for name in sorted(series):
        for structure, depth_ratio, eff_ratio in series[name]:
            lines.append(
                f"{name:<10} {structure:<15} {depth_ratio:>18.3f} {eff_ratio:>16.3f}"
            )
    return "\n".join(lines)
