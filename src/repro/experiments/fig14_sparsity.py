"""Fig. 14 reproduction: sensitivity to cross-chip link sparsity.

The paper keeps 7, 3 or 1 of the 7 possible cross-chip links on every chiplet
edge of a 3x3 array of 7x7 square chiplets and reports MECH's depth and
eff_CNOT count *normalised by the baseline's*.  As the links get sparser the
baseline degrades (its SWAP chains funnel through fewer cross-chip couplers)
while MECH stays roughly flat, so the normalised depth drops and the
normalised eff_CNOT count rises.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware.array import ChipletArray
from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from .runner import ComparisonRecord, compare
from .settings import BENCHMARK_NAMES

__all__ = ["run_fig14", "normalized_by_sparsity", "format_fig14"]

#: Device per scale tier; the sparsity levels scale with the chiplet width.
_SCALE_DEVICE: Dict[str, Tuple[str, int, int, int, Tuple[int, ...]]] = {
    # structure, chiplet width, rows, cols, links-per-edge sweep
    "small": ("square", 4, 2, 2, (4, 2, 1)),
    "medium": ("square", 5, 2, 3, (5, 3, 1)),
    "paper": ("square", 7, 3, 3, (7, 3, 1)),
}


def run_fig14(
    *,
    scale: str = "small",
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    sparsity_levels: Optional[Sequence[int]] = None,
    noise: NoiseModel = DEFAULT_NOISE,
    seed: int = 0,
) -> List[ComparisonRecord]:
    """Regenerate Fig. 14: one record per (links-per-edge, benchmark)."""
    if scale not in _SCALE_DEVICE:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(_SCALE_DEVICE)}")
    structure, width, rows, cols, default_levels = _SCALE_DEVICE[scale]
    levels = tuple(sparsity_levels) if sparsity_levels is not None else default_levels
    records: List[ComparisonRecord] = []
    for links in levels:
        array = ChipletArray(structure, width, rows, cols, cross_links_per_edge=links)
        for name in benchmarks:
            record = compare(name, array, noise=noise, seed=seed)
            record.extra["cross_links_per_edge"] = float(links)
            record.extra["max_cross_links_per_edge"] = float(array.max_cross_links_per_edge())
            records.append(record)
    return records


def normalized_by_sparsity(
    records: Sequence[ComparisonRecord],
) -> Dict[str, List[Tuple[str, float, float]]]:
    """Per-benchmark series ``(sparsity label, normalised depth, normalised eff_CNOTs)``."""
    series: Dict[str, List[Tuple[str, float, float]]] = {}
    for record in records:
        links = int(record.extra.get("cross_links_per_edge", 0))
        full = int(record.extra.get("max_cross_links_per_edge", links))
        label = f"{links}/{full}"
        series.setdefault(record.benchmark, []).append(
            (label, record.normalized_depth, record.normalized_eff_cnots)
        )
    return series


def format_fig14(records: Sequence[ComparisonRecord]) -> str:
    """Text rendering of the two normalised-metric panels of Fig. 14."""
    series = normalized_by_sparsity(records)
    lines = ["Fig. 14: normalised performance vs cross-chip link sparsity"]
    lines.append(f"{'benchmark':<10} {'links':>7} {'depth (MECH/base)':>18} {'eff (MECH/base)':>16}")
    lines.append("-" * 56)
    for name in sorted(series):
        for label, depth_ratio, eff_ratio in series[name]:
            lines.append(f"{name:<10} {label:>7} {depth_ratio:>18.3f} {eff_ratio:>16.3f}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=sorted(_SCALE_DEVICE))
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    print(format_fig14(run_fig14(scale=args.scale, seed=args.seed)))


if __name__ == "__main__":  # pragma: no cover
    main()
