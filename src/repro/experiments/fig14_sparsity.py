"""Fig. 14 reproduction: sensitivity to cross-chip link sparsity.

The paper keeps 7, 3 or 1 of the 7 possible cross-chip links on every chiplet
edge of a 3x3 array of 7x7 square chiplets and reports MECH's depth and
eff_CNOT count *normalised by the baseline's*.  As the links get sparser the
baseline degrades (its SWAP chains funnel through fewer cross-chip couplers)
while MECH stays roughly flat, so the normalised depth drops and the
normalised eff_CNOT count rises.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..hardware.array import ChipletArray
from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from .engine import Job, experiment_checkpoint_meta, noise_to_items, run_jobs
from .runner import AnyRecord, resolve_compilers
from .settings import BENCHMARK_NAMES

__all__ = ["jobs_for_fig14", "run_fig14", "normalized_by_sparsity", "format_fig14"]

#: Device per scale tier; the sparsity levels scale with the chiplet width.
_SCALE_DEVICE: dict[str, tuple[str, int, int, int, tuple[int, ...]]] = {
    # structure, chiplet width, rows, cols, links-per-edge sweep
    "small": ("square", 4, 2, 2, (4, 2, 1)),
    "medium": ("square", 5, 2, 3, (5, 3, 1)),
    "paper": ("square", 7, 3, 3, (7, 3, 1)),
}


def jobs_for_fig14(
    *,
    scale: str = "small",
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    sparsity_levels: Sequence[int] | None = None,
    noise: NoiseModel = DEFAULT_NOISE,
    seed: int = 0,
    compilers: Sequence[str] | None = None,
) -> list[Job]:
    """One job per (links-per-edge, benchmark) of the Fig. 14 sweep."""
    if scale not in _SCALE_DEVICE:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(_SCALE_DEVICE)}")
    structure, width, rows, cols, default_levels = _SCALE_DEVICE[scale]
    levels = tuple(sparsity_levels) if sparsity_levels is not None else default_levels
    noise_items = noise_to_items(noise)
    compiler_names = resolve_compilers(compilers)
    jobs: list[Job] = []
    for links in levels:
        # the full per-edge link count is a property of the (cheap) topology,
        # recorded as a tag so the normalisation labels survive the cache
        array = ChipletArray(structure, width, rows, cols, cross_links_per_edge=links)
        tags = (
            ("cross_links_per_edge", float(links)),
            ("max_cross_links_per_edge", float(array.max_cross_links_per_edge())),
        )
        for name in benchmarks:
            jobs.append(
                Job(
                    benchmark=name,
                    structure=structure,
                    chiplet_width=width,
                    rows=rows,
                    cols=cols,
                    cross_links_per_edge=links,
                    seed=seed,
                    noise=noise_items,
                    tags=tags,
                    compilers=compiler_names,
                )
            )
    return jobs


def run_fig14(
    *,
    scale: str = "small",
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    sparsity_levels: Sequence[int] | None = None,
    noise: NoiseModel = DEFAULT_NOISE,
    seed: int = 0,
    compilers: Sequence[str] | None = None,
    workers: int = 1,
    cache=None,
    policy=None,
    checkpoint=None,
) -> list[AnyRecord]:
    """Regenerate Fig. 14: one record per (links-per-edge, benchmark)."""
    jobs = jobs_for_fig14(
        scale=scale,
        benchmarks=benchmarks,
        sparsity_levels=sparsity_levels,
        noise=noise,
        seed=seed,
        compilers=compilers,
    )
    return run_jobs(
        jobs,
        workers=workers,
        cache=cache,
        policy=policy,
        checkpoint=checkpoint,
        checkpoint_meta=experiment_checkpoint_meta(
            "fig14", scale, benchmarks, seed, cache, compilers=resolve_compilers(compilers)
        ),
    )


def normalized_by_sparsity(
    records: Sequence[AnyRecord],
) -> dict[str, list[tuple[str, float, float]]]:
    """Per-benchmark series ``(sparsity label, normalised depth, normalised eff_CNOTs)``."""
    series: dict[str, list[tuple[str, float, float]]] = {}
    for record in records:
        links = int(record.extra.get("cross_links_per_edge", 0))
        full = int(record.extra.get("max_cross_links_per_edge", links))
        label = f"{links}/{full}"
        series.setdefault(record.benchmark, []).append(
            (label, record.normalized_depth, record.normalized_eff_cnots)
        )
    return series


def format_fig14(records: Sequence[AnyRecord]) -> str:
    """Text rendering of the two normalised-metric panels of Fig. 14."""
    series = normalized_by_sparsity(records)
    lines = ["Fig. 14: normalised performance vs cross-chip link sparsity"]
    lines.append(f"{'benchmark':<10} {'links':>7} {'depth (MECH/base)':>18} {'eff (MECH/base)':>16}")
    lines.append("-" * 56)
    for name in sorted(series):
        for label, depth_ratio, eff_ratio in series[name]:
            lines.append(f"{name:<10} {label:>7} {depth_ratio:>18.3f} {eff_ratio:>16.3f}")
    return "\n".join(lines)
