"""The coordinator's lease-based work queue.

A :class:`LeaseQueue` owns the pending half of an
:class:`~repro.experiments.engine.ExecutionPlan`: each unique config key is
one entry that moves ``pending → leased → completed | failed`` (and back to
``pending`` on a retriable failure or an expired lease).  All transitions are
made under one lock, so any number of coordinator connection threads can
claim/complete/fail/heartbeat concurrently.

The invariant the whole farm's crash story rests on: **an entry starts at
most ``policy.retries + 1`` attempts, ever** — no matter how attempts end
(worker-reported failure, lease expiry after a SIGKILL, or both for the same
attempt).  ``attempts_started`` increments exactly once per claim, expiry
preserves it, and both :meth:`fail` and :meth:`expire` consult it before
re-queueing, so a job can never execute past its :class:`JobPolicy` budget.

Late results are welcome: a worker presumed dead (lease expired, job
re-leased) that eventually reports ``complete`` delivers a deterministic,
fully valid record — the queue accepts it idempotently and the re-leased
attempt's own completion becomes a no-op.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any
from collections.abc import Mapping

from ..experiments.engine import Job, JobError, JobPolicy, job_to_dict
from .schema import Lease

__all__ = ["LeaseQueue", "QueueEntry"]

PENDING = "pending"
LEASED = "leased"
COMPLETED = "completed"
FAILED = "failed"


@dataclass
class QueueEntry:
    """One unique job's queue state."""

    key: str
    job: Job
    state: str = PENDING
    #: Claims handed out so far; bounded by ``policy.retries + 1``.
    attempts_started: int = 0
    worker: str | None = None
    deadline: float = 0.0
    error: JobError | None = None


class LeaseQueue:
    """Thread-safe lease bookkeeping over a plan's pending jobs."""

    def __init__(
        self,
        pending: Mapping[str, Job],
        *,
        policy: JobPolicy | None = None,
        lease_seconds: float = 15.0,
    ) -> None:
        if not (lease_seconds > 0):
            raise ValueError(f"lease_seconds must be positive, got {lease_seconds}")
        self.policy = policy if policy is not None else JobPolicy()
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = self.policy.retries + 1
        self._entries: dict[str, QueueEntry] = {
            key: QueueEntry(key=key, job=job) for key, job in pending.items()
        }
        self._lock = threading.RLock()

    def _worker_policy(self) -> dict[str, Any]:
        # single attempt, report-don't-raise: the coordinator owns the budget
        return {
            "timeout": self.policy.timeout,
            "retries": 0,
            "reseed_on_retry": False,
            "on_error": "record",
        }

    # ------------------------------------------------------------------ #
    # transitions
    # ------------------------------------------------------------------ #
    def claim(self, worker_id: str, max_jobs: int, *, now: float | None = None) -> list[Lease]:
        """Hand out up to ``max_jobs`` leases in insertion order.

        Expired leases are reclaimed first (opportunistically — the expiry
        thread does the same on its own cadence), so a claim arriving just
        after a worker died can pick its jobs straight back up.
        """
        now = time.time() if now is None else now
        with self._lock:
            self.expire(now=now)
            leases: list[Lease] = []
            for entry in self._entries.values():
                if len(leases) >= max(1, max_jobs):
                    break
                if entry.state != PENDING:
                    continue
                attempt = entry.attempts_started
                entry.attempts_started += 1
                entry.state = LEASED
                entry.worker = worker_id
                entry.deadline = now + self.lease_seconds
                entry.error = None
                job = entry.job
                if attempt and self.policy.reseed_on_retry:
                    # coordinator-side reseed: the result still lands under
                    # the original config key (the lease's ``key``)
                    job = job.with_(seed=job.seed + attempt)
                leases.append(
                    Lease(
                        key=entry.key,
                        job=job_to_dict(job),
                        attempt=attempt,
                        policy=self._worker_policy(),
                        deadline_unix=entry.deadline,
                    )
                )
            return leases

    def complete(self, key: str, worker_id: str) -> bool:
        """Mark ``key`` done; True when the result should be kept.

        Accepts a completion from *any* worker that ever held the key — a
        presumed-dead worker's late result is deterministic and valid, and
        salvaging it may even rescue an entry already marked failed.  A
        duplicate completion is an idempotent no-op (returns False so the
        caller does not double-store).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.state == COMPLETED:
                return False
            entry.state = COMPLETED
            entry.worker = None
            entry.error = None
            return True

    def fail(self, key: str, worker_id: str, error: JobError, *, now: float | None = None) -> bool:
        """Record one failed attempt; True when the job was re-queued.

        A failure from a worker that no longer holds the lease (it expired
        and the job was re-leased or resolved meanwhile) is stale and
        ignored — the live attempt decides the entry's fate.
        """
        now = time.time() if now is None else now
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.state in (COMPLETED, FAILED):
                return False
            if entry.state == LEASED and entry.worker != worker_id:
                return False  # stale report from an expired lease
            if entry.attempts_started < self.max_attempts:
                entry.state = PENDING
                entry.worker = None
                entry.deadline = 0.0
                entry.error = None
                return True
            entry.state = FAILED
            entry.worker = None
            entry.error = error
            return False

    def heartbeat(self, worker_id: str, keys: list[str], *, now: float | None = None) -> int:
        """Extend the deadlines of ``worker_id``'s live leases; returns the count."""
        now = time.time() if now is None else now
        extended = 0
        with self._lock:
            for key in keys:
                entry = self._entries.get(key)
                if entry is not None and entry.state == LEASED and entry.worker == worker_id:
                    entry.deadline = now + self.lease_seconds
                    extended += 1
        return extended

    def expire(self, *, now: float | None = None) -> list[tuple[str, str]]:
        """Reclaim every lease past its deadline.

        Each expired entry either returns to the queue (attempt budget left —
        the count is *preserved*, exactly as if the worker had reported the
        failure itself) or fails permanently with a synthesized "worker lost"
        :class:`JobError`.  Returns ``(key, "requeued" | "failed")`` pairs.
        """
        now = time.time() if now is None else now
        transitions: list[tuple[str, str]] = []
        with self._lock:
            for entry in self._entries.values():
                if entry.state != LEASED or entry.deadline >= now:
                    continue
                worker = entry.worker or "?"
                if entry.attempts_started < self.max_attempts:
                    entry.state = PENDING
                    entry.worker = None
                    entry.deadline = 0.0
                    transitions.append((entry.key, "requeued"))
                else:
                    entry.state = FAILED
                    entry.worker = None
                    entry.error = JobError(
                        key=entry.key,
                        benchmark=entry.job.benchmark,
                        kind=entry.job.kind,
                        error_type="WorkerLostError",
                        message=(
                            f"lease expired (worker {worker} missed its heartbeat)"
                            f" after {entry.attempts_started} attempt(s)"
                        ),
                        traceback_tail="",
                        attempts=entry.attempts_started,
                        seconds=0.0,
                    )
                    transitions.append((entry.key, "failed"))
        return transitions

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def done(self) -> bool:
        with self._lock:
            return all(e.state in (COMPLETED, FAILED) for e in self._entries.values())

    def counts(self) -> dict[str, int]:
        with self._lock:
            counts = {PENDING: 0, LEASED: 0, COMPLETED: 0, FAILED: 0}
            for entry in self._entries.values():
                counts[entry.state] += 1
            return counts

    def failed_errors(self) -> list[JobError]:
        with self._lock:
            return [e.error for e in self._entries.values() if e.state == FAILED and e.error]

    def job_for(self, key: str) -> Job | None:
        entry = self._entries.get(key)
        return entry.job if entry is not None else None

    def entry_state(self, key: str) -> str | None:
        with self._lock:
            entry = self._entries.get(key)
            return entry.state if entry is not None else None

    def __len__(self) -> int:
        return len(self._entries)
