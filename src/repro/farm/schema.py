"""Protocol-v2 (farm) message helpers: leases, constructors, validators.

The farm reuses :mod:`repro.serve.schema`'s newline-JSON framing verbatim;
what this module adds is the typed payloads the work-queue ops carry.  A
:class:`Lease` is the unit of hand-off between coordinator and worker: one
unique job (by config key), the attempt index the coordinator is starting,
the *single-attempt* execution policy the worker must apply, and the wall
deadline by which the coordinator expects a result or a heartbeat.

The retry budget is owned by the coordinator, never the worker: every lease
ships ``retries=0`` / ``on_error="record"`` so a worker performs exactly one
attempt and reports back, and the coordinator's :class:`~repro.farm.queue.
LeaseQueue` decides — against the *original* :class:`JobPolicy` — whether a
failure re-queues or becomes permanent.  Reseed-on-retry is likewise applied
coordinator-side (the leased job dict already carries the bumped seed) so a
re-attempt by a different worker still lands under the original config key.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

from ..serve.schema import (
    FARM_PROTOCOL_VERSION,
    ServeProtocolError,
    ServeRequest,
    request_token,
)

__all__ = [
    "Lease",
    "claim_request",
    "complete_request",
    "fail_request",
    "heartbeat_request",
    "parse_claim",
    "parse_complete",
    "parse_fail",
    "parse_heartbeat",
    "progress_request",
]

_FARM_REQUEST_COUNTER = itertools.count(1)


def _next_id(prefix: str) -> str:
    # the process token keeps ids unique across workers: the coordinator's
    # dedup layer replays recorded responses for repeated ids, so two
    # workers both counting "claim-1" would receive each other's leases
    return f"{prefix}-{request_token()}-{next(_FARM_REQUEST_COUNTER)}"


@dataclass(frozen=True)
class Lease:
    """One leased unit of work, as carried in a ``claim`` response."""

    #: The job's engine config key (also the result-cache key).
    key: str
    #: The job in manifest encoding (seed already bumped on re-attempts).
    job: dict[str, Any]
    #: 0-based attempt index; ``attempt + 1`` counts against ``retries + 1``.
    attempt: int
    #: Single-attempt policy dict the worker passes to ``_execute_keyed``.
    policy: dict[str, Any]
    #: Unix time after which the lease expires without a heartbeat.
    deadline_unix: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "job": self.job,
            "attempt": self.attempt,
            "policy": self.policy,
            "deadline_unix": self.deadline_unix,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Lease":
        if not isinstance(payload, dict):
            raise ServeProtocolError("lease must be a JSON object")
        key = payload.get("key")
        job = payload.get("job")
        attempt = payload.get("attempt")
        policy = payload.get("policy")
        deadline = payload.get("deadline_unix")
        if not isinstance(key, str) or not key:
            raise ServeProtocolError("lease is missing a string 'key'")
        if not isinstance(job, dict):
            raise ServeProtocolError("lease is missing an object 'job'")
        if not isinstance(attempt, int) or attempt < 0:
            raise ServeProtocolError("lease 'attempt' must be a non-negative int")
        if not isinstance(policy, dict):
            raise ServeProtocolError("lease is missing an object 'policy'")
        if not isinstance(deadline, (int, float)):
            raise ServeProtocolError("lease 'deadline_unix' must be a number")
        return cls(
            key=key,
            job=dict(job),
            attempt=attempt,
            policy=dict(policy),
            deadline_unix=float(deadline),
        )


# --------------------------------------------------------------------------
# request constructors (worker side)


def claim_request(worker_id: str, max_jobs: int) -> ServeRequest:
    return ServeRequest(
        op="claim",
        request_id=_next_id("claim"),
        protocol=FARM_PROTOCOL_VERSION,
        body={"worker_id": worker_id, "max_jobs": max_jobs},
    )


def complete_request(worker_id: str, key: str, result: dict[str, Any]) -> ServeRequest:
    return ServeRequest(
        op="complete",
        request_id=_next_id("complete"),
        protocol=FARM_PROTOCOL_VERSION,
        body={"worker_id": worker_id, "key": key, "result": result},
    )


def fail_request(worker_id: str, key: str, job_error: dict[str, Any]) -> ServeRequest:
    return ServeRequest(
        op="fail",
        request_id=_next_id("fail"),
        protocol=FARM_PROTOCOL_VERSION,
        body={"worker_id": worker_id, "key": key, "job_error": job_error},
    )


def heartbeat_request(worker_id: str, keys: list[str]) -> ServeRequest:
    return ServeRequest(
        op="heartbeat",
        request_id=_next_id("heartbeat"),
        protocol=FARM_PROTOCOL_VERSION,
        body={"worker_id": worker_id, "keys": list(keys)},
    )


def progress_request() -> ServeRequest:
    return ServeRequest(
        op="progress",
        request_id=_next_id("progress"),
        protocol=FARM_PROTOCOL_VERSION,
        body={},
    )


# --------------------------------------------------------------------------
# request validators (coordinator side)


def _body_str(request: ServeRequest, name: str) -> str:
    value = (request.body or {}).get(name)
    if not isinstance(value, str) or not value:
        raise ServeProtocolError(f"{request.op} request is missing a string '{name}'")
    return value


def parse_claim(request: ServeRequest) -> tuple[str, int]:
    """``(worker_id, max_jobs)`` of a ``claim`` request."""
    worker_id = _body_str(request, "worker_id")
    max_jobs = (request.body or {}).get("max_jobs", 1)
    if not isinstance(max_jobs, int) or max_jobs < 1:
        raise ServeProtocolError("claim 'max_jobs' must be a positive int")
    return worker_id, max_jobs


def parse_complete(request: ServeRequest) -> tuple[str, str, dict[str, Any]]:
    """``(worker_id, key, result_payload)`` of a ``complete`` request."""
    worker_id = _body_str(request, "worker_id")
    key = _body_str(request, "key")
    result = (request.body or {}).get("result")
    if not isinstance(result, dict):
        raise ServeProtocolError("complete request is missing an object 'result'")
    return worker_id, key, result


def parse_fail(request: ServeRequest) -> tuple[str, str, dict[str, Any]]:
    """``(worker_id, key, job_error)`` of a ``fail`` request."""
    worker_id = _body_str(request, "worker_id")
    key = _body_str(request, "key")
    job_error = (request.body or {}).get("job_error")
    if not isinstance(job_error, dict):
        raise ServeProtocolError("fail request is missing an object 'job_error'")
    return worker_id, key, job_error


def parse_heartbeat(request: ServeRequest) -> tuple[str, list[str]]:
    """``(worker_id, keys)`` of a ``heartbeat`` request."""
    worker_id = _body_str(request, "worker_id")
    keys = (request.body or {}).get("keys")
    if not isinstance(keys, list) or not all(isinstance(k, str) for k in keys):
        raise ServeProtocolError("heartbeat 'keys' must be a list of strings")
    return worker_id, list(keys)
