"""Compile-farm subsystem: coordinator, lease queue, workers, launchers.

``repro farm run`` drives a :class:`~repro.farm.coordinator.FarmCoordinator`
(which plans through the engine's cache-aware :func:`plan_jobs` and serves a
lease-based work queue over the protocol-v2 wire) plus N workers launched
through a pluggable :class:`~repro.farm.launcher.WorkerLauncher`.  See the
README's "Compile farm" section for the operational story.
"""

from .coordinator import FarmCoordinator, run_farm
from .launcher import (
    CommandWorkerLauncher,
    LocalWorkerLauncher,
    WorkerLauncher,
    stop_workers,
)
from .queue import LeaseQueue, QueueEntry
from .schema import Lease
from .worker import default_worker_id, run_worker

__all__ = [
    "CommandWorkerLauncher",
    "FarmCoordinator",
    "Lease",
    "LeaseQueue",
    "LocalWorkerLauncher",
    "QueueEntry",
    "WorkerLauncher",
    "default_worker_id",
    "run_farm",
    "run_worker",
    "stop_workers",
]
