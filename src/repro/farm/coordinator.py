"""The compile-farm coordinator and the ``repro farm run`` driver.

A :class:`FarmCoordinator` owns one run end to end:

* it plans the job list through the engine's own :func:`plan_jobs` (cache
  consulted with ``refresh=True``), so cached work is **never dispatched** —
  a farm run against a warm cache executes exactly what ``repro run`` would;
* it serves the protocol-v2 lease queue over the same newline-JSON TCP
  framing as ``repro serve`` (plus the v1 control ops, so ``repro submit
  --ping/--stats`` works against a coordinator unchanged);
* it persists every state transition as a delta appended to the journal
  beside the checkpoint file, and compacts the current state into a
  checkpoint-schema-v2 document on (throttled) flush — a coordinator crash
  therefore resumes through the existing ``repro resume`` path, losing at
  most the bookkeeping since the last flush and **no results** (those were
  already in the shared cache);
* a lost worker heals by lease expiry: its jobs return to the queue with
  their attempt counts preserved, so the total attempts per job can never
  exceed ``JobPolicy.retries + 1``.

:func:`run_farm` is the one-call driver behind ``repro farm run``: start a
coordinator, launch workers through a pluggable
:class:`~repro.farm.launcher.WorkerLauncher`, wait, reassemble records in
job order — byte-identical artifacts (modulo ``*_seconds``) to a
single-process run.
"""

from __future__ import annotations

import contextlib
import os
import signal
import socket
import threading
import time
from pathlib import Path
from typing import Any
from collections.abc import Callable, Mapping, Sequence

from ..experiments.engine import (
    ExecutionPlan,
    Job,
    JobError,
    JobPolicy,
    ResultCache,
    RunReport,
    _atomic_write_json,
    _coerce_cache,
    _raise_job_error,
    append_journal,
    checkpoint_document,
    job_to_dict,
    journal_path_for,
    plan_jobs,
    record_from_payload,
)
from ..chaos import chaos_controller
from ..experiments.runner import AnyRecord
from ..serve.dedup import ResponseLog
from ..serve.schema import (
    FARM_PROTOCOL_VERSION,
    FrameTooLargeError,
    ServeProtocolError,
    ServeRequest,
    ServeResponse,
    decode_line,
    encode_message,
    protocol_error_response,
    read_frame,
    work_stats,
)
from .launcher import WorkerHandle, WorkerLauncher, stop_workers
from .queue import COMPLETED, FAILED, LEASED, PENDING, LeaseQueue
from .schema import parse_claim, parse_complete, parse_fail, parse_heartbeat

__all__ = ["FarmCoordinator", "run_farm"]

#: Minimum interval between routine (non-forced) checkpoint compactions —
#: the same cadence the batch engine flushes at.
_FLUSH_SECONDS = 1.0


class FarmCoordinator:
    """Lease-queue coordinator for one planned job list.

    Parameters mirror :func:`run_jobs_report` where they overlap: ``cache``
    is the shared result cache (also consulted at plan time), ``policy`` the
    per-job fault-tolerance budget (its ``retries`` bound lease re-issues,
    its ``timeout`` ships to workers inside each lease), ``checkpoint`` /
    ``checkpoint_meta`` the resumable progress file.  ``lease_seconds`` is
    the heartbeat horizon: a worker silent for longer forfeits its leases.
    """

    def __init__(
        self,
        jobs: Sequence[Job],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache: None | str | Path | ResultCache = None,
        policy: JobPolicy | None = None,
        lease_seconds: float = 15.0,
        checkpoint: None | str | Path = None,
        checkpoint_meta: Mapping[str, object] | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        self.jobs = list(jobs)
        self.host = host
        self.port = port
        self.store = _coerce_cache(cache)
        self.policy = policy if policy is not None else JobPolicy()
        self.lease_seconds = float(lease_seconds)
        self.checkpoint_path = Path(checkpoint) if checkpoint is not None else None
        self.checkpoint_meta = dict(checkpoint_meta) if checkpoint_meta else {}
        self.progress = progress
        self.interrupted = False

        self.plan: ExecutionPlan | None = None
        self.queue: LeaseQueue | None = None
        self.payloads: dict[str, dict[str, object]] = {}
        self._cached_keys: list[str] = []
        self._started = time.perf_counter()
        self._sock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._expiry_thread: threading.Thread | None = None
        self._connection_threads: list[threading.Thread] = []
        self._connections: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        #: Serialises journal appends + checkpoint compaction + cache puts.
        self._io_lock = threading.Lock()
        #: Replays recorded responses when a worker retries after a drop —
        #: without it a lost claim *reply* would burn a lease attempt.
        self.dedup = ResponseLog()
        #: Checkpoint compactions that failed at the filesystem (degraded
        #: persistence: the run continues, resumability is what's at risk).
        self.checkpoint_write_errors = 0
        self._last_flush = 0.0
        self._done = threading.Event()
        self._shutdown = threading.Event()

    @property
    def journal_path(self) -> Path | None:
        if self.checkpoint_path is None:
            return None
        return journal_path_for(self.checkpoint_path)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "FarmCoordinator":
        if self._sock is not None:
            raise RuntimeError("coordinator is already running")
        self._started = time.perf_counter()
        self.plan = plan_jobs(self.jobs, cache=self.store, refresh=True)
        self.payloads = dict(self.plan.payloads)
        self._cached_keys = sorted(self.plan.payloads)
        self.queue = LeaseQueue(
            self.plan.pending, policy=self.policy, lease_seconds=self.lease_seconds
        )
        self._journal(
            {
                "event": "plan",
                "total": self.plan.total,
                "unique": len(self.plan.unique),
                "cached": self.plan.cache_hits,
                "pending": len(self.plan.pending),
            }
        )
        self.flush(force=True)
        if self.queue.done():
            self._done.set()
        self._sock = socket.create_server((self.host, self.port))
        self.port = self._sock.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-farm-accept", daemon=True
        )
        self._accept_thread.start()
        self._expiry_thread = threading.Thread(
            target=self._expiry_loop, name="repro-farm-expiry", daemon=True
        )
        self._expiry_thread.start()
        return self

    def shutdown(self) -> None:
        if self._shutdown.is_set() and self._sock is None:
            return
        self._shutdown.set()
        sock, self._sock = self._sock, None
        if sock is not None:
            with contextlib.suppress(OSError):
                sock.close()
        for thread in (self._accept_thread, self._expiry_thread):
            if thread is not None:
                thread.join(timeout=5.0)
        self._accept_thread = None
        self._expiry_thread = None
        with self._conn_lock:
            open_conns = list(self._connections)
        for conn in open_conns:
            with contextlib.suppress(OSError):
                conn.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                conn.close()
        for thread in list(self._connection_threads):
            thread.join(timeout=5.0)
        self._connection_threads.clear()
        self.flush(force=True)

    def __enter__(self) -> "FarmCoordinator":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until every unique job is completed or permanently failed."""
        return self._done.wait(timeout)

    # ------------------------------------------------------------------ #
    # journal + checkpoint persistence
    # ------------------------------------------------------------------ #
    def _journal(self, delta: dict[str, object]) -> None:
        path = self.journal_path
        if path is None:
            return
        with contextlib.suppress(OSError):
            append_journal(path, {"ts": round(time.time(), 6), **delta})

    def flush(self, *, force: bool = False, finished: bool | None = None) -> None:
        """Compact the current state into the checkpoint file (throttled)."""
        if self.checkpoint_path is None or self.plan is None or self.queue is None:
            return
        now = time.monotonic()
        if not force and now - self._last_flush < _FLUSH_SECONDS:
            return
        self._last_flush = now
        errors = self.queue.failed_errors()
        failed_keys = {error.key for error in errors}
        completed = [key for key in self.plan.pending if key in self.payloads]
        remaining = [
            {"key": key, "benchmark": job.benchmark, "kind": job.kind}
            for key, job in self.plan.pending.items()
            if key not in self.payloads and key not in failed_keys
        ]
        done = finished if finished is not None else (not remaining and not self.interrupted)
        document = checkpoint_document(
            finished=done,
            interrupted=self.interrupted,
            meta=self.checkpoint_meta,
            total_jobs=self.plan.total,
            cache_hits=self.plan.cache_hits,
            cached_keys=self._cached_keys,
            completed_keys=completed,
            failed=errors,
            pending_entries=remaining,
            serialized_jobs=[job_to_dict(job) for job in self.jobs],
        )
        try:
            _atomic_write_json(self.checkpoint_path, document)
        except OSError:
            self.checkpoint_write_errors += 1
        else:
            self._journal({"event": "compact", "finished": done})

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #
    def errors(self) -> list[JobError]:
        return self.queue.failed_errors() if self.queue is not None else []

    def records(self) -> list[AnyRecord]:
        """Records in original job order — the same reassembly as the engine."""
        assert self.plan is not None
        records: list[AnyRecord] = []
        for job, key in zip(self.jobs, self.plan.keys, strict=True):
            payload = self.payloads.get(key)
            if payload is None:  # failed past its budget
                continue
            record = record_from_payload(payload)
            for tag, value in job.tags:
                record.extra[tag] = value
            records.append(record)
        return records

    def report(self, *, workers: int = 1) -> RunReport:
        assert self.plan is not None
        errors = self.errors()
        write_errors = self.store.write_errors if self.store is not None else 0
        return RunReport(
            total=self.plan.total,
            cache_hits=self.plan.cache_hits,
            executed=len(self.plan.pending),
            deduplicated=self.plan.deduplicated,
            workers=workers,
            seconds=time.perf_counter() - self._started,
            failed=len(errors),
            errors=errors,
            interrupted=self.interrupted,
            cache_write_errors=write_errors,
            cache_degraded=bool(self.store is not None and self.store.degraded),
            checkpoint_write_errors=self.checkpoint_write_errors,
            transport_replays=self.dedup.replayed,
        )

    def progress_payload(self) -> dict[str, Any]:
        """The ``progress``/``stats`` reply — shares the server's queue schema."""
        assert self.plan is not None and self.queue is not None
        counts = self.queue.counts()
        queue = work_stats(
            total=len(self.plan.unique),
            queue_depth=counts[PENDING],
            in_flight=counts[LEASED],
            completed=self.plan.cache_hits + counts[COMPLETED],
            failed=counts[FAILED],
        )
        return {
            "protocol": FARM_PROTOCOL_VERSION,
            "host": self.host,
            "port": self.port,
            "lease_seconds": self.lease_seconds,
            "done": self.queue.done(),
            "queue": queue,
        }

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        sock = self._sock
        if sock is None:
            return
        try:
            sock.settimeout(0.2)
        except OSError:
            return
        while not self._shutdown.is_set():
            try:
                conn, _addr = sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-farm-conn",
                daemon=True,
            )
            self._connection_threads = [t for t in self._connection_threads if t.is_alive()]
            self._connection_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with self._conn_lock:
            self._connections.add(conn)

        def transmit(response: ServeResponse) -> None:
            # record before the write so a reply lost to a drop is replayed
            # verbatim when the worker retries with the same request_id
            self.dedup.record(response)
            data = encode_message(response)
            chaos = chaos_controller()
            if chaos is not None:
                data = chaos.on_frame("coordinator.send", data)
            conn.sendall(data)

        try:
            reader = conn.makefile("rb")
            while True:
                try:
                    line = read_frame(reader)
                except FrameTooLargeError as exc:
                    # framing is unrecoverable past the cap: answer + sever
                    with contextlib.suppress(OSError):
                        transmit(protocol_error_response(b"", exc))
                    break
                if line is None:
                    break
                if not line.strip():
                    continue
                chaos = chaos_controller()
                if chaos is not None:
                    line = chaos.on_frame("coordinator.recv", line)
                try:
                    request = decode_line(line, ServeRequest)
                except ServeProtocolError as exc:
                    response = protocol_error_response(line, exc)
                else:
                    replayed = self.dedup.replay(request.request_id)
                    if replayed is not None:
                        response = replayed
                    else:
                        try:
                            response = self._dispatch(request)
                        except ServeProtocolError as exc:
                            response = ServeResponse(
                                request_id=request.request_id,
                                ok=False,
                                payload={"code": "protocol-error"},
                                error=f"protocol error: {exc}",
                                protocol=request.protocol,
                            )
                try:
                    transmit(response)
                except OSError:
                    break
        except OSError:  # includes an injected ChaosDrop (a ConnectionError)
            pass
        finally:
            with contextlib.suppress(OSError):
                conn.close()
            with self._conn_lock:
                self._connections.discard(conn)

    def _dispatch(self, request: ServeRequest) -> ServeResponse:
        assert self.queue is not None
        op = request.op

        def reply(payload: dict[str, Any] | None = None, **kwargs: Any) -> ServeResponse:
            return ServeResponse(
                request_id=request.request_id,
                ok=True,
                payload=payload or {},
                protocol=request.protocol,
                **kwargs,
            )

        if op == "ping":
            return reply({"protocol": request.protocol, "role": "farm-coordinator"})
        if op in ("stats", "progress"):
            return reply(self.progress_payload())
        if op == "shutdown":
            # an operator abort: flush what we have and wake the driver
            self.interrupted = True
            self.flush(force=True, finished=False)
            self._done.set()
            self._shutdown.set()
            return reply()
        if op == "claim":
            return self._handle_claim(request)
        if op == "complete":
            return self._handle_complete(request)
        if op == "fail":
            return self._handle_fail(request)
        if op == "heartbeat":
            worker_id, keys = parse_heartbeat(request)
            extended = self.queue.heartbeat(worker_id, keys)
            return reply({"extended": extended})
        if op == "compile":
            return ServeResponse(
                request_id=request.request_id,
                ok=False,
                error="this endpoint is a farm coordinator; submit compiles to `repro serve`",
            )
        raise ServeProtocolError(f"unhandled op {op!r}")  # pragma: no cover

    def _handle_claim(self, request: ServeRequest) -> ServeResponse:
        assert self.queue is not None
        worker_id, max_jobs = parse_claim(request)
        # journal expirations before the claim can re-lease the same keys
        # (claim's own opportunistic expiry would make them invisible here)
        self._note_expirations(self.queue.expire())
        leases = self.queue.claim(worker_id, max_jobs)
        for lease in leases:
            self._journal(
                {
                    "event": "lease",
                    "key": lease.key,
                    "worker": worker_id,
                    "attempt": lease.attempt,
                    "deadline_unix": lease.deadline_unix,
                }
            )
        return ServeResponse(
            request_id=request.request_id,
            ok=True,
            payload={
                "leases": [lease.to_dict() for lease in leases],
                "done": self.queue.done(),
                "lease_seconds": self.lease_seconds,
            },
            protocol=FARM_PROTOCOL_VERSION,
        )

    def _handle_complete(self, request: ServeRequest) -> ServeResponse:
        assert self.queue is not None
        worker_id, key, result = parse_complete(request)
        if "job_error" in result:
            raise ServeProtocolError("complete must carry a record payload, not a job_error")
        accepted = self.queue.complete(key, worker_id)
        if accepted:
            with self._io_lock:
                if key not in self.payloads:
                    self.payloads[key] = dict(result)
                    job = self.queue.job_for(key)
                    if self.store is not None and job is not None:
                        with contextlib.suppress(OSError):
                            self.store.put(key, job, result)
            self._journal({"event": "complete", "key": key, "worker": worker_id})
            if self.progress is not None:
                counts = self.queue.counts()
                done = counts[COMPLETED] + counts[FAILED]
                self.progress(f"{done}/{len(self.queue)} jobs executed")
        self._after_transition()
        return ServeResponse(
            request_id=request.request_id,
            ok=True,
            payload={"accepted": accepted},
            protocol=FARM_PROTOCOL_VERSION,
        )

    def _handle_fail(self, request: ServeRequest) -> ServeResponse:
        assert self.queue is not None
        worker_id, key, job_error = parse_fail(request)
        try:
            error = JobError(**job_error)
        except TypeError as exc:
            raise ServeProtocolError(f"malformed job_error: {exc}") from exc
        requeued = self.queue.fail(key, worker_id, error)
        self._journal(
            {
                "event": "fail",
                "key": key,
                "worker": worker_id,
                "error_type": error.error_type,
                "requeued": requeued,
            }
        )
        if self.progress is not None:
            self.progress(
                f"{error.benchmark} failed ({error.error_type});"
                f" {'re-queued' if requeued else 'budget exhausted'}"
            )
        self._after_transition(force=not requeued)
        return ServeResponse(
            request_id=request.request_id,
            ok=True,
            payload={"requeued": requeued},
            protocol=FARM_PROTOCOL_VERSION,
        )

    def _after_transition(self, *, force: bool = False) -> None:
        assert self.queue is not None
        if self.queue.done():
            self.flush(force=True)
            self._done.set()
        else:
            self.flush(force=force)

    def _note_expirations(self, transitions: list[tuple[str, str]]) -> None:
        for key, outcome in transitions:
            self._journal({"event": "expire", "key": key, "outcome": outcome})
            if self.progress is not None:
                self.progress(f"lease expired: {key[:12]}… ({outcome})")
        if transitions:
            self._after_transition(force=True)

    def _expiry_loop(self) -> None:
        assert self.queue is not None
        period = min(1.0, self.lease_seconds / 4.0)
        while not self._shutdown.wait(period):
            self._note_expirations(self.queue.expire())


def run_farm(
    jobs: Sequence[Job],
    *,
    launcher: WorkerLauncher,
    workers: int = 2,
    host: str = "127.0.0.1",
    port: int = 0,
    cache: None | str | Path | ResultCache = None,
    policy: JobPolicy | None = None,
    lease_seconds: float = 15.0,
    checkpoint: None | str | Path = None,
    checkpoint_meta: Mapping[str, object] | None = None,
    progress: Callable[[str], None] | None = None,
    poll_seconds: float = 0.25,
) -> tuple[list[AnyRecord], RunReport]:
    """Run ``jobs`` over a coordinator plus ``workers`` launched workers.

    The driver behind ``repro farm run``: plans, serves the lease queue,
    launches the workers, waits for the queue to drain (healing worker
    crashes by lease expiry along the way), and reassembles records in job
    order so the caller can emit artifacts byte-identical (modulo
    ``*_seconds``) to a single-process run.  Aborts with ``RuntimeError``
    only when *every* worker has exited while work remains — one surviving
    worker is enough to finish the run.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    policy = policy if policy is not None else JobPolicy()
    coordinator = FarmCoordinator(
        jobs,
        host=host,
        port=port,
        cache=cache,
        policy=policy,
        lease_seconds=lease_seconds,
        checkpoint=checkpoint,
        checkpoint_meta=checkpoint_meta,
        progress=progress,
    )
    coordinator.start()
    if progress is not None:
        # `--port 0` binds an ephemeral port; announce it so extra
        # `repro farm-worker --connect` processes can join the run
        progress(f"coordinator listening on {coordinator.host}:{coordinator.port}")
    handles: list[WorkerHandle] = []

    # a scheduler stopping the farm with SIGTERM must leave a resumable
    # checkpoint, exactly like the batch engine does (main thread only)
    sigterm_installed = False
    sigterm_previous: Any = None

    def _flush_on_sigterm(signum, frame):
        coordinator.interrupted = True
        coordinator.flush(force=True, finished=False)
        stop_workers(handles)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        os.kill(os.getpid(), signal.SIGTERM)

    if (
        checkpoint is not None
        and hasattr(signal, "SIGTERM")
        and threading.current_thread() is threading.main_thread()
    ):
        try:
            sigterm_previous = signal.signal(signal.SIGTERM, _flush_on_sigterm)
            sigterm_installed = True
        except (ValueError, OSError):  # pragma: no cover - exotic embeddings
            sigterm_installed = False

    try:
        need_workers = not coordinator.wait(timeout=0)
        if need_workers:
            for index in range(workers):
                handles.append(launcher.launch(index, coordinator.host, coordinator.port))
        while not coordinator.wait(timeout=poll_seconds):
            if handles and all(handle.poll() is not None for handle in handles):
                raise RuntimeError(
                    "every farm worker exited while work remains; see the"
                    f" journal at {coordinator.journal_path} for the last"
                    " transitions"
                )
    except KeyboardInterrupt:
        coordinator.interrupted = True
        coordinator.flush(force=True, finished=False)
        raise
    finally:
        stop_workers(handles)
        coordinator.shutdown()
        if sigterm_installed:
            with contextlib.suppress(ValueError, OSError):
                signal.signal(signal.SIGTERM, sigterm_previous)

    errors = coordinator.errors()
    if errors and policy.on_error == "raise":
        _raise_job_error(errors[0])
    records = coordinator.records()
    report = coordinator.report(workers=workers)
    return records, report
