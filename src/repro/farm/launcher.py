"""Pluggable worker launchers for ``repro farm run``.

A launcher answers one question: *given a coordinator address, start worker
number ``index`` somewhere and hand back a process-like handle*.  The
built-in :class:`LocalWorkerLauncher` spawns ``python -m repro farm-worker``
subprocesses on this machine; :class:`CommandWorkerLauncher` renders a
user-supplied command template (``{host}``/``{port}``/``{index}``/
``{workers}`` placeholders) through the shell, which is enough to wrap
``ssh``, ``kubectl run``, a batch scheduler, or anything else that can
eventually execute ``repro farm-worker --connect HOST:PORT``.

Handles only need ``poll()`` (None while running), ``terminate()`` and
``kill()`` — exactly the :class:`subprocess.Popen` surface — so the driver
can notice dead workers and stop live ones without knowing how they were
started.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path
from typing import Any, Protocol

__all__ = [
    "CommandWorkerLauncher",
    "LocalWorkerLauncher",
    "WorkerHandle",
    "WorkerLauncher",
    "render_worker_command",
    "stop_workers",
]


class WorkerHandle(Protocol):
    """The minimal process surface the farm driver needs."""

    def poll(self) -> int | None: ...  # noqa: E704

    def terminate(self) -> None: ...  # noqa: E704

    def kill(self) -> None: ...  # noqa: E704


class WorkerLauncher(Protocol):
    """Start worker ``index`` against the coordinator at ``host:port``."""

    def launch(self, index: int, host: str, port: int) -> WorkerHandle: ...  # noqa: E704


def _env_with_src_on_path() -> dict[str, str]:
    """Ensure the spawned interpreter can import :mod:`repro`.

    ``repro farm run`` may be invoked via ``PYTHONPATH=src`` from the repo
    root or from an installed package; prepending the package's own parent
    directory covers both without clobbering an existing ``PYTHONPATH``.
    """
    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    parts = [src_dir] + ([existing] if existing else [])
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    return env


class LocalWorkerLauncher:
    """Spawn ``python -m repro farm-worker`` subprocesses on this host.

    ``threads`` is the per-worker ``--workers`` value (executor threads
    inside each worker process); ``log_dir`` captures each worker's stdout +
    stderr to ``worker-<index>.log`` for post-mortems, otherwise output is
    discarded.
    """

    def __init__(self, *, threads: int = 1, log_dir: str | Path | None = None) -> None:
        if threads < 1:
            raise ValueError("threads must be at least 1")
        self.threads = threads
        self.log_dir = Path(log_dir) if log_dir is not None else None

    def launch(self, index: int, host: str, port: int) -> subprocess.Popen[bytes]:
        argv = [
            sys.executable,
            "-m",
            "repro",
            "farm-worker",
            "--connect",
            f"{host}:{port}",
            "--workers",
            str(self.threads),
            "--worker-id",
            f"local-{index}-{os.getpid()}",
        ]
        stdout: Any = subprocess.DEVNULL
        if self.log_dir is not None:
            self.log_dir.mkdir(parents=True, exist_ok=True)
            stdout = open(self.log_dir / f"worker-{index}.log", "ab")  # noqa: SIM115
        try:
            return subprocess.Popen(
                argv,
                stdout=stdout,
                stderr=subprocess.STDOUT,
                env=_env_with_src_on_path(),
            )
        finally:
            if stdout is not subprocess.DEVNULL:
                stdout.close()  # Popen holds its own descriptor


def render_worker_command(template: str, *, index: int, host: str, port: int, workers: int) -> str:
    """Substitute the launcher placeholders into a command template."""
    try:
        return template.format(host=host, port=port, index=index, workers=workers)
    except (KeyError, IndexError) as exc:
        raise ValueError(
            f"bad worker command template {template!r}: unknown placeholder {exc};"
            " available: {host} {port} {index} {workers}"
        ) from exc


class CommandWorkerLauncher:
    """Launch workers through an arbitrary shell command template.

    The template receives ``{host}``, ``{port}``, ``{index}`` and
    ``{workers}``; e.g.::

        repro farm run table2 --worker-command \\
          'ssh node{index} REPRO_CACHE=/shared/.repro-cache \\
           python -m repro farm-worker --connect {host}:{port} --workers {workers}'

    The spawned shell process is the handle — for remote launchers like
    ``ssh`` that means "the worker is up while the connection lives", which
    is exactly the liveness signal the driver wants.
    """

    def __init__(self, template: str, *, threads: int = 1) -> None:
        if not template.strip():
            raise ValueError("worker command template must be non-empty")
        if threads < 1:
            raise ValueError("threads must be at least 1")
        self.template = template
        self.threads = threads

    def launch(self, index: int, host: str, port: int) -> subprocess.Popen[bytes]:
        command = render_worker_command(
            self.template, index=index, host=host, port=port, workers=self.threads
        )
        return subprocess.Popen(  # noqa: S602 - the template is operator-supplied
            command,
            shell=True,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.STDOUT,
            env=_env_with_src_on_path(),
        )


def stop_workers(handles: list[Any], *, timeout: float = 5.0) -> None:
    """Terminate (then kill) every still-running worker handle."""
    for handle in handles:
        if handle.poll() is None:
            try:
                handle.terminate()
            except OSError:
                continue
    for handle in handles:
        waiter = getattr(handle, "wait", None)
        if waiter is None:
            continue
        try:
            waiter(timeout=timeout)
        except Exception:
            try:
                handle.kill()
            except OSError:
                pass
