"""The farm worker loop behind ``repro farm-worker``.

A worker is deliberately dumb: it claims a batch of leases, executes each
through :func:`repro.experiments.engine._execute_keyed` — the *same* entry
point the batch engine's process pool and the compile server use, so a
farm-built record payload is byte-identical to a local one — and reports
``complete`` or ``fail`` per lease.  Every lease carries a single-attempt
policy (the coordinator owns the retry budget), so the worker never loops on
a failing job.

While jobs are in flight a background thread heartbeats their keys on its
own connection at a third of the coordinator's lease horizon; a worker that
dies (even ``SIGKILL``, which runs no handlers) simply stops heartbeating
and its leases return to the queue when they expire.

Timeouts work inside worker threads because the engine's ``_deadline`` falls
back to an async-exception watchdog off the main thread.
"""

from __future__ import annotations

import contextlib
import os
import signal
import socket
import sys
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Any
from collections.abc import Callable

from ..experiments.engine import _execute_keyed
from ..serve.client import ServeClient
from ..serve.retry import BackoffPolicy, retry_call
from ..serve.schema import ServeProtocolError, ServeResponse
from .schema import (
    Lease,
    claim_request,
    complete_request,
    fail_request,
    heartbeat_request,
)

__all__ = ["default_worker_id", "run_worker"]


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class _Heartbeat:
    """Background lease-renewal on a dedicated connection."""

    def __init__(self, host: str, port: int, worker_id: str, interval: float) -> None:
        self.host = host
        self.port = port
        self.worker_id = worker_id
        self.interval = max(0.2, interval)
        self.keys: set[str] = set()
        self.lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def track(self, keys: list[str]) -> None:
        with self.lock:
            self.keys.update(keys)

    def release(self, key: str) -> None:
        with self.lock:
            self.keys.discard(key)

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._loop, name="repro-farm-heartbeat", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            with self.lock:
                keys = sorted(self.keys)
            if not keys:
                continue
            try:
                with ServeClient(
                    self.host, self.port, timeout=10.0, site="worker-hb"
                ) as client:
                    client.request(heartbeat_request(self.worker_id, keys))
            except (OSError, ServeProtocolError):
                # the coordinator will either come back or expire us; the
                # main loop notices a dead coordinator on its next report
                continue


def run_worker(
    host: str,
    port: int,
    *,
    workers: int = 1,
    worker_id: str | None = None,
    batch: int | None = None,
    poll_seconds: float = 0.5,
    progress: Callable[[str], None] | None = None,
) -> int:
    """Claim-execute-report until the coordinator says the run is done.

    Returns a process exit code: ``0`` when the queue drained, ``1`` when the
    coordinator became unreachable (the worker cannot finish on its own).
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    worker_id = worker_id or default_worker_id()
    batch = batch if batch is not None else workers

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    heartbeat: _Heartbeat | None = None
    executed = 0
    try:
        with (
            # the backoff policy + request retries make the worker survive a
            # mid-run coordinator connection drop: a failed claim/report is
            # resent on a fresh connection with the same request_id and the
            # coordinator's dedup log replays the answer it already computed
            ServeClient(
                host,
                port,
                timeout=300.0,
                site="worker",
                connect_policy=BackoffPolicy(max_total_seconds=30.0),
                request_retries=4,
            ) as client,
            ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-farm-exec"
            ) as pool,
        ):
            while True:
                response = client.request(claim_request(worker_id, batch))
                if not response.ok:
                    note(f"claim rejected: {response.error}")
                    return 1
                payload = response.payload
                leases = [Lease.from_dict(item) for item in payload.get("leases", [])]
                if not leases:
                    if payload.get("done"):
                        note(f"queue drained after {executed} job(s); exiting")
                        return 0
                    time.sleep(poll_seconds)
                    continue
                lease_seconds = float(payload.get("lease_seconds", 15.0))
                if heartbeat is None:
                    heartbeat = _Heartbeat(host, port, worker_id, lease_seconds / 3.0)
                    heartbeat.start()
                heartbeat.track([lease.key for lease in leases])
                executed += _run_batch(client, pool, leases, worker_id, heartbeat, note)
    except (OSError, ServeProtocolError) as exc:
        note(f"lost the coordinator: {type(exc).__name__}: {exc}")
        return 1
    finally:
        if heartbeat is not None:
            heartbeat.stop()


def _run_batch(
    client: ServeClient,
    pool: ThreadPoolExecutor,
    leases: list[Lease],
    worker_id: str,
    heartbeat: _Heartbeat,
    note: Callable[[str], None],
) -> int:
    """Execute one claimed batch; report each job as soon as it finishes."""
    futures: dict[Future[tuple[str, dict[str, Any]]], Lease] = {
        pool.submit(_execute_keyed, (lease.key, lease.job, lease.policy)): lease
        for lease in leases
    }
    executed = 0
    remaining = set(futures)
    while remaining:
        finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
        for future in finished:
            lease = futures[future]
            key, payload = future.result()  # _execute_keyed never raises
            heartbeat.release(key)
            if "job_error" in payload:
                job_error = payload["job_error"]
                response = client.request(fail_request(worker_id, key, dict(job_error)))
                _check(response)
                note(
                    f"attempt {lease.attempt + 1} failed:"
                    f" {job_error.get('benchmark')} ({job_error.get('error_type')})"
                )
            else:
                response = client.request(complete_request(worker_id, key, payload))
                _check(response)
                executed += 1
                note(f"completed {lease.job.get('benchmark')} (attempt {lease.attempt + 1})")
    return executed


def _check(response: ServeResponse) -> None:
    if not response.ok:
        raise ServeProtocolError(response.error or "coordinator rejected the report")


def main_loop_with_retry(
    host: str,
    port: int,
    *,
    workers: int = 1,
    worker_id: str | None = None,
    batch: int | None = None,
    connect_attempts: int = 20,
    connect_timeout: float = 2.0,
    max_connect_seconds: float = 30.0,
    progress: Callable[[str], None] | None = None,
) -> int:
    """``run_worker`` with a patient first connect (coordinator may still be binding).

    The wait runs under the shared capped-exponential-backoff policy:
    ``connect_timeout`` bounds each dial, ``connect_attempts`` and
    ``max_connect_seconds`` bound the whole wait (whichever budget runs
    out first).
    """
    # the farm driver stops workers with SIGTERM once the queue drains;
    # converting it to SystemExit lets atexit hooks (chaos report flush)
    # run instead of the process dying mid-frame
    try:
        signal.signal(signal.SIGTERM, lambda signum, frame: sys.exit(0))
    except ValueError:
        pass  # not the main thread (embedded in tests); leave signals alone
    policy = BackoffPolicy(
        initial=0.1,
        cap=2.0,
        max_attempts=max(1, connect_attempts),
        max_total_seconds=max_connect_seconds,
    )

    def dial() -> None:
        with contextlib.closing(
            socket.create_connection((host, port), timeout=connect_timeout)
        ):
            pass

    try:
        retry_call(dial, policy=policy)
    except OSError as exc:
        if progress is not None:
            progress(f"coordinator never came up at {host}:{port}: {exc}")
        return 1
    return run_worker(
        host,
        port,
        workers=workers,
        worker_id=worker_id,
        batch=batch,
        progress=progress,
    )
