"""``python -m repro`` / ``repro`` — unified experiment-orchestration CLI.

Runs any of the paper's figures/tables through the orchestration engine::

    repro run fig12 --scale small --jobs 4
    repro run table2 fig16 --benchmarks BV QFT --out-dir artifacts
    repro run table2 --compilers baseline,mech,sabre-x   # N-way comparison
    repro run fig12 --timeout 3600 --retries 1 --on-error record
    repro run fig12 --dry-run            # what would execute?  (--json for machines)
    repro resume artifacts/fig12.checkpoint.json
    repro resume artifacts/fig12.checkpoint.json --only-failed
    repro compilers                      # registered compiler backends (--json)
    repro bench --quick                  # pinned perf suite -> BENCH_<ts>.json
    repro bench --quick --backends all   # sweep every registered backend
    repro bench --suite fig12 --against artifacts/BENCH_20260730-120000.json
    repro bench --history benchmarks/history   # trends over accumulated docs
    repro verify --suite quick           # static IR verification of every backend
    repro run fig12 --verify             # verify each fresh compilation in-line
    repro serve --port 7463              # warm-state compile server (repro.serve)
    repro submit --port 7463 --benchmark QFT --chiplet-width 5 --rows 1 --cols 2
    repro submit --port 7463 --suite quick --concurrency 4
    repro submit --port 7463 --shutdown  # graceful server stop (--ping, --stats)
    repro bench --latency --quick        # cold vs warm serve-path p50/p99 gate
    repro farm run table2 --local-workers 2      # coordinator + leased workers
    repro farm run fig12 --worker-command 'ssh node{index} ...'   # remote workers
    repro farm-worker --connect 127.0.0.1:7464   # join an existing coordinator
    repro list
    repro cache-stats [--json]           # size/health + hit-rate telemetry
    repro cache-stats --rank access      # the daemon's exact eviction order
    repro clean-cache --older-than 30    # TTL sweep (add --dry-run to preview)
    repro clean-cache --watch --interval 300 --max-mb 512   # eviction daemon

Every run memoizes its per-job results in an on-disk cache (default
``.repro-cache/``, sharded by config-hash prefix), so re-running an
experiment — or running a different experiment that shares cells with a
previous one — only compiles what is missing.  Each experiment emits
``<name>.json`` / ``<name>.csv`` / ``<name>.txt`` artifacts plus a
``<name>.checkpoint.json`` progress file into the output directory (default
``artifacts/``).  Failed jobs (``--timeout`` exceeded, compiler crash) are
retried ``--retries`` times and then, under the default ``--on-error
record``, reported as error rows in the artifacts while every healthy job
still completes; the exit code is 1 when any job failed.

Execution is incremental: ``repro run --dry-run`` prints the exact
cached/pending/failed plan a real run would execute (compiling nothing), and
``repro resume <checkpoint>`` finishes an interrupted or partially failed
sweep from its checkpoint file alone — the serialized job list is
re-hydrated, completed jobs are served from the cache, only the remainder
executes, and the merged artifacts match an uninterrupted run's.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from collections.abc import Sequence

from .backends import DEFAULT_COMPILERS, available_backends, backend_descriptions
from .experiments.engine import (
    SCALE_TIERS,
    VERIFY_ENV,
    Checkpoint,
    CheckpointError,
    JobPolicy,
    ResultCache,
    RunReport,
    journal_path_for,
    load_checkpoint,
    plan_jobs,
    plan_summary,
    repair_journal,
    run_jobs_report,
    write_artifacts,
)
from .experiments.engine import config_key
from .experiments.registry import (
    EXPERIMENTS,
    build_experiment_jobs,
    experiment_meta,
    plan_experiment,
    run_experiment,
)
from .experiments.runner import AnyRecord, format_failed_rows, normalize_compilers
from .experiments.settings import BENCHMARK_NAMES

__all__ = ["main", "build_parser"]

DEFAULT_CACHE_DIR = ".repro-cache"
DEFAULT_OUT_DIR = "artifacts"
#: Default TCP port of the ``repro serve`` / ``repro submit`` pair.
DEFAULT_SERVE_PORT = 7463

#: Seconds per day, for ``clean-cache --older-than DAYS``.
_DAY_SECONDS = 86400.0


def _add_cache_options(
    parser: argparse.ArgumentParser, *, default_dir: str | None = DEFAULT_CACHE_DIR
) -> None:
    if default_dir is not None:
        dir_help = f"result-cache directory (default {default_dir})"
    else:
        dir_help = (
            "result-cache directory (default: the cache dir recorded in the"
            f" checkpoint, falling back to {DEFAULT_CACHE_DIR})"
        )
    parser.add_argument("--cache-dir", default=default_dir, help=dir_help)
    parser.add_argument("--no-cache", action="store_true", help="disable the result cache")
    parser.add_argument(
        "--cache-max-mb",
        type=float,
        default=None,
        metavar="MB",
        help="LRU size cap for the result cache (least-recently-used entries"
        " are evicted once the cache grows past this; default unlimited)",
    )


def _add_policy_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock timeout (per attempt; default none)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="extra attempts for a failed job (default 0)",
    )
    parser.add_argument(
        "--reseed-on-retry",
        action="store_true",
        help="bump the job seed on each retry (the result keeps the original cache key)",
    )
    parser.add_argument(
        "--on-error",
        choices=list(JobPolicy.ON_ERROR_CHOICES),
        default="record",
        help="what to do when a job exhausts its attempts: abort the sweep"
        " (raise), drop the job (skip), or keep sweeping and emit a JobError"
        " row in the artifacts (record; default)",
    )


def _add_worker_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (0 = one per CPU; default 1)",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress progress output")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run",
        help="regenerate one or more figures/tables through the engine",
        description="Regenerate experiments; results are cached per job config hash.",
    )
    run.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help=f"experiments to run: {', '.join(sorted(EXPERIMENTS))}",
    )
    run.add_argument("--scale", default="small", choices=list(SCALE_TIERS))
    run.add_argument(
        "--benchmarks",
        nargs="*",
        default=list(BENCHMARK_NAMES),
        metavar="NAME",
        help=f"benchmark programs (default: {' '.join(BENCHMARK_NAMES)})",
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--compilers",
        default=",".join(DEFAULT_COMPILERS),
        metavar="A,B[,C...]",
        help="comma-separated registered compiler backends to compare, the"
        " first being the reference for improvement ratios (default"
        f" {','.join(DEFAULT_COMPILERS)}; see `repro compilers` for the registry)",
    )
    _add_worker_options(run)
    _add_cache_options(run)
    run.add_argument(
        "--out-dir",
        default=DEFAULT_OUT_DIR,
        help=f"artifact directory (default {DEFAULT_OUT_DIR})",
    )
    _add_policy_options(run)
    run.add_argument(
        "--verify",
        action="store_true",
        help="statically verify every freshly compiled result (hardware"
        " legality, semantic preservation, highway-protocol invariants,"
        " metric consistency); a verification failure fails the job through"
        " the normal --on-error path.  Cache hits are served unverified —"
        " they were checked when first computed",
    )
    run.add_argument(
        "--dry-run",
        action="store_true",
        help="plan only: diff the expanded jobs against the cache and print"
        " what a run would do (cached/pending/failed) without executing"
        " anything or writing artifacts",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="with --dry-run, print the plan as a JSON document",
    )

    resume = sub.add_parser(
        "resume",
        help="finish an interrupted or partially failed run from its checkpoint file",
        description="Re-hydrate the serialized job list of a <name>.checkpoint.json"
        " (no experiment re-expansion), execute only the jobs that never"
        " completed (completed jobs are cache hits), and write the merged"
        " artifacts exactly as the uninterrupted run would have.",
    )
    resume.add_argument(
        "checkpoint",
        metavar="CHECKPOINT",
        help="path to the <name>.checkpoint.json written by a previous run",
    )
    _add_worker_options(resume)
    _add_cache_options(resume, default_dir=None)
    resume.add_argument(
        "--out-dir",
        default=None,
        help="artifact directory (default: the checkpoint's own directory)",
    )
    _add_policy_options(resume)
    resume.add_argument(
        "--dry-run",
        action="store_true",
        help="plan only: print what the resume would execute and exit",
    )
    resume.add_argument(
        "--json",
        action="store_true",
        help="with --dry-run, print the plan as a JSON document",
    )
    resume.add_argument(
        "--only-failed",
        action="store_true",
        help="re-execute only the checkpoint's failed jobs (plus cached"
        " completions for the artifacts); jobs that never started are"
        " dropped from this resume and from the rewritten checkpoint",
    )

    sub.add_parser("list", help="list the available experiments and scale tiers")

    bench = sub.add_parser(
        "bench",
        help="compile a pinned workload suite per backend and track wall-clock",
        description="Run the pinned compile workloads of a bench suite with"
        " every requested backend, print the timing table and write a"
        " BENCH_<timestamp>.json document.  With --against FILE the run is"
        " compared to a previous document (old timings rescaled by the"
        " recorded machine-calibration ratio) and the exit code is 1 when the"
        " geometric-mean wall-clock regresses beyond --max-regression.  With"
        " --history DIR no compilation happens at all: every accumulated"
        " BENCH_*.json under DIR is analysed into per-backend trend series"
        " and a TREND_<timestamp>.json report, exiting 1 when any backend's"
        " wall-clock drifted beyond --max-drift since the previous document.",
    )
    bench.add_argument(
        "--suite",
        default="quick",
        choices=["quick", "fig12", "full"],
        help="pinned workload suite (default quick; fig12 = the paper's"
        " large 7x7-chiplet scalability presets)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="alias for --suite quick (the CI smoke tier)",
    )
    bench.add_argument(
        "--compilers",
        "--backends",
        dest="compilers",
        default=",".join(DEFAULT_COMPILERS),
        metavar="A,B[,C...]",
        help="registered compiler backends to benchmark — one name, a"
        " comma list, or the sentinel 'all' for the whole registry (default"
        f" {','.join(DEFAULT_COMPILERS)})",
    )
    bench.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="compile each workload N times and keep the fastest (default 1)",
    )
    bench.add_argument(
        "--out-dir",
        default=DEFAULT_OUT_DIR,
        help=f"directory for the BENCH_*.json document (default {DEFAULT_OUT_DIR})",
    )
    bench.add_argument(
        "--against",
        metavar="FILE",
        default=None,
        help="compare this run against a previous BENCH_*.json document",
    )
    bench.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        metavar="FRACTION",
        help="with --against, fail (exit 1) when the geometric-mean"
        " wall-clock grows by more than this fraction (default 0.25)",
    )
    bench.add_argument(
        "--history",
        metavar="DIR",
        default=None,
        help="analyse every BENCH_*.json under DIR into a per-backend trend"
        " report instead of compiling anything (writes TREND_*.json to"
        " --out-dir)",
    )
    bench.add_argument(
        "--max-drift",
        type=float,
        default=0.5,
        metavar="FRACTION",
        help="with --history, fail (exit 1) when any backend's geomean"
        " wall-clock grew by more than this fraction since the previous"
        " document (default 0.5)",
    )
    bench.add_argument(
        "--verify",
        action="store_true",
        help="statically verify every compiled result; rows gain"
        " verified/violations columns and the exit code is 1 when any"
        " compilation has violations",
    )
    bench.add_argument(
        "--json",
        action="store_true",
        help="print the bench document (and comparison) as JSON",
    )
    bench.add_argument("--quiet", action="store_true", help="suppress progress output")
    latency = bench.add_argument_group(
        "latency mode (--latency)",
        "serve-path latency suite: cold one-shot-process requests vs warm"
        " requests against an in-process compile server, p50/p99 under"
        " concurrent load, written as LATENCY_<timestamp>.json.  Exit code 1"
        " when the warm/cold p50 ratio exceeds --max-warm-ratio, the"
        " concurrent warm p99 exceeds --max-p99, or served results are not"
        " byte-identical to the batch path.",
    )
    latency.add_argument(
        "--latency",
        action="store_true",
        help="measure serve-path latency instead of compile throughput",
    )
    latency.add_argument(
        "--requests",
        type=int,
        default=8,
        metavar="N",
        help="warm requests per workload, measured serially and concurrently"
        " (default 8)",
    )
    latency.add_argument(
        "--concurrency",
        type=int,
        default=4,
        metavar="N",
        help="client threads (and server workers) for the concurrent warm"
        " phase (default 4)",
    )
    latency.add_argument(
        "--cold-requests",
        type=int,
        default=2,
        metavar="N",
        help="cold one-shot-process requests per workload (default 2)",
    )
    latency.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="only measure the first N workloads of the suite (CI smoke)",
    )
    latency.add_argument(
        "--max-warm-ratio",
        type=float,
        default=0.75,
        metavar="RATIO",
        help="fail (exit 1) when warm p50 / cold p50 exceeds RATIO"
        " (default 0.75; the acceptance target is 0.5)",
    )
    latency.add_argument(
        "--max-p99",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fail (exit 1) when the concurrent warm p99 exceeds SECONDS"
        " (default: no absolute bound)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the warm-state compile server (pair with `repro submit`)",
        description="Serve compile requests over a local TCP socket, keeping"
        " per-device routing state (chiplet array, highway layout, router"
        " distance tables) resident between requests.  Requests execute"
        " through the engine's own job machinery, so served results carry"
        " the same cache keys and payloads as `repro run` and share its"
        " result cache.  Stop with `repro submit --shutdown` or Ctrl-C.",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port",
        type=int,
        default=DEFAULT_SERVE_PORT,
        help=f"TCP port; 0 binds an ephemeral port (default {DEFAULT_SERVE_PORT})",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="compile worker threads (default 2)",
    )
    serve.add_argument(
        "--max-devices",
        type=int,
        default=8,
        metavar="N",
        help="distinct device configurations kept warm (LRU; default 8)",
    )
    _add_cache_options(serve)
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-job wall-clock timeout for served compiles"
        " (requests may override; default none)",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="default extra attempts for a failed served job (default 0)",
    )
    serve.add_argument("--quiet", action="store_true", help="suppress startup/shutdown output")

    submit = sub.add_parser(
        "submit",
        help="submit compile jobs (or ping/stats/shutdown) to a running server",
        description="Client for `repro serve`.  Submit one job described by"
        " the device flags, or a whole pinned bench suite with --suite;"
        " responses print as a per-compiler metric table (--json for the raw"
        " responses).  --ping, --stats and --shutdown are control operations"
        " and take no job flags.",
    )
    submit.add_argument("--host", default="127.0.0.1", help="server address (default 127.0.0.1)")
    submit.add_argument(
        "--port",
        type=int,
        default=DEFAULT_SERVE_PORT,
        help=f"server TCP port (default {DEFAULT_SERVE_PORT})",
    )
    submit.add_argument(
        "--ping",
        action="store_true",
        help="liveness check: exit 0 once the server answers (retries briefly)",
    )
    submit.add_argument("--stats", action="store_true", help="print server/warm-state counters")
    submit.add_argument("--shutdown", action="store_true", help="stop the server gracefully")
    submit.add_argument(
        "--suite",
        default=None,
        choices=["quick", "fig12", "full"],
        help="submit every workload of a pinned bench suite instead of one"
        " job from the device flags",
    )
    submit.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="with --suite, only submit the first N workloads",
    )
    submit.add_argument("--benchmark", default="QFT", help="benchmark circuit (default QFT)")
    submit.add_argument("--structure", default="square", help="chiplet structure (default square)")
    submit.add_argument("--chiplet-width", type=int, default=5, help="qubits per chiplet edge")
    submit.add_argument("--rows", type=int, default=1, help="chiplet rows (default 1)")
    submit.add_argument("--cols", type=int, default=2, help="chiplet columns (default 2)")
    submit.add_argument(
        "--highway-density", type=int, default=1, help="highway lines per chiplet (default 1)"
    )
    submit.add_argument("--seed", type=int, default=0, help="job seed (default 0)")
    submit.add_argument(
        "--compilers",
        default=",".join(DEFAULT_COMPILERS),
        metavar="A,B[,C...]",
        help="registered compiler backends to compare, at least two"
        f" (default {','.join(DEFAULT_COMPILERS)})",
    )
    submit.add_argument(
        "--concurrency",
        type=int,
        default=1,
        metavar="N",
        help="parallel client connections for multi-job submissions (default 1)",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock timeout applied by the server (default:"
        " the server's own default policy)",
    )
    submit.add_argument(
        "--connect-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="per-dial socket timeout when (re)connecting (default 5)",
    )
    submit.add_argument(
        "--max-connect-seconds",
        type=float,
        default=15.0,
        metavar="SECONDS",
        help="total wall-clock budget for connect retries, with capped"
        " exponential backoff (default 15)",
    )
    submit.add_argument(
        "--json",
        action="store_true",
        help="print the raw serve responses as JSON",
    )

    verify = sub.add_parser(
        "verify",
        help="statically verify compiled circuits: topology, semantics,"
        " highway protocol, metrics",
        description="Compile every workload of a pinned suite with the"
        " requested backends and run the static circuit-IR verifier"
        " (repro.analysis) over each result: every emitted 2-qubit gate must"
        " be hardware-legal, the routed circuit must be a"
        " dependency-preserving reordering of the input modulo commutation"
        " with movement elided, the highway protocol's"
        " establishment/occupancy/commutation invariants must hold, and the"
        " reported stats must match recomputation.  Writes a VERIFY_*.json"
        " report document.  Exit code: 0 when every compilation verifies"
        " clean, 1 when any violation is found, 2 on usage errors.",
    )
    verify.add_argument(
        "--suite",
        default="quick",
        choices=["quick", "fig12", "full"],
        help="pinned workload suite to verify (default quick)",
    )
    verify.add_argument(
        "--compilers",
        "--backends",
        dest="compilers",
        default="all",
        metavar="A[,B...]",
        help="registered compiler backends to verify — one name, a comma"
        " list, or 'all' for the whole registry (default all)",
    )
    verify.add_argument(
        "--out-dir",
        default=DEFAULT_OUT_DIR,
        help=f"directory for the VERIFY_*.json report (default {DEFAULT_OUT_DIR})",
    )
    verify.add_argument(
        "--json",
        action="store_true",
        help="print the verification report as JSON",
    )
    verify.add_argument("--quiet", action="store_true", help="suppress progress output")

    compilers = sub.add_parser(
        "compilers",
        help="list the registered compiler backends (repro run --compilers)",
    )
    compilers.add_argument(
        "--json",
        action="store_true",
        help="print the backend registry as a JSON document",
    )

    stats = sub.add_parser("cache-stats", help="summarise the result cache's size and health")
    stats.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    stats.add_argument(
        "--json",
        action="store_true",
        help="print the full stats document (per-entry access counts,"
        " hit-rate summary) as JSON",
    )
    stats.add_argument(
        "--rank",
        choices=["access"],
        default=None,
        help="print the access-ranked eviction order instead of the summary:"
        " exactly the order `clean-cache --max-mb` evicts in (fewest recorded"
        " hits first, ties broken by least-recent use, then by entry name)",
    )

    clean = sub.add_parser(
        "clean-cache",
        help="delete cached results: everything, or only entries older than a TTL",
    )
    clean.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    clean.add_argument(
        "--older-than",
        type=float,
        default=None,
        metavar="DAYS",
        help="only remove entries whose last use is older than DAYS days"
        " (default: remove everything)",
    )
    clean.add_argument(
        "--max-mb",
        type=float,
        default=None,
        metavar="MB",
        help="also evict access-ranked entries (fewest recorded hits first,"
        " least recently used breaking ties) until the cache fits under MB"
        " — `cache-stats --rank access` previews the exact order",
    )
    clean.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be removed without deleting anything",
    )
    clean.add_argument(
        "--watch",
        action="store_true",
        help="run as an eviction daemon: repeat the sweep every --interval"
        " seconds until interrupted (SIGINT/SIGTERM exit cleanly)",
    )
    clean.add_argument(
        "--interval",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="sweep period for --watch (default 300)",
    )
    clean.add_argument(
        "--max-cycles",
        type=int,
        default=None,
        metavar="N",
        help="with --watch, exit after N sweep cycles (mainly for CI smoke runs)",
    )

    farm = sub.add_parser(
        "farm",
        help="distributed compile farm: coordinator + leased work-queue workers",
        description="Run an experiment across many worker processes/machines."
        " The coordinator plans against the shared cache (cached work is never"
        " dispatched), serves a lease-based work queue over the repro-serve"
        " wire protocol (v2), journals every state transition beside the"
        " checkpoint, and heals crashed workers by lease expiry. A crashed"
        " coordinator resumes with `repro resume <checkpoint>`.",
    )
    farm_sub = farm.add_subparsers(dest="farm_command", required=True)
    farm_run = farm_sub.add_parser(
        "run",
        help="run one experiment through a coordinator plus launched workers",
    )
    farm_run.add_argument(
        "experiment",
        metavar="EXPERIMENT",
        help=f"experiment to run: {', '.join(sorted(EXPERIMENTS))}",
    )
    farm_run.add_argument(
        "--scale",
        default="small",
        choices=[*SCALE_TIERS, "smoke"],
        help="scale tier (smoke is an alias for small)",
    )
    farm_run.add_argument(
        "--benchmarks",
        nargs="*",
        default=list(BENCHMARK_NAMES),
        metavar="NAME",
        help=f"benchmark programs (default: {' '.join(BENCHMARK_NAMES)})",
    )
    farm_run.add_argument("--seed", type=int, default=0)
    farm_run.add_argument(
        "--compilers",
        default=",".join(DEFAULT_COMPILERS),
        metavar="A,B[,C...]",
        help="comma-separated compiler backends, reference first (default"
        f" {','.join(DEFAULT_COMPILERS)})",
    )
    farm_run.add_argument(
        "--local-workers",
        type=int,
        default=2,
        metavar="N",
        help="worker processes to launch (default 2)",
    )
    farm_run.add_argument(
        "--worker-threads",
        type=int,
        default=1,
        metavar="N",
        help="executor threads inside each worker (default 1)",
    )
    farm_run.add_argument(
        "--worker-command",
        default=None,
        metavar="TEMPLATE",
        help="launch each worker with this shell command template instead of"
        " a local subprocess; placeholders: {host} {port} {index} {workers}"
        " (e.g. 'ssh node{index} python -m repro farm-worker --connect"
        " {host}:{port} --workers {workers}')",
    )
    farm_run.add_argument("--host", default="127.0.0.1", help="coordinator bind address")
    farm_run.add_argument(
        "--port",
        type=int,
        default=0,
        help="coordinator TCP port (default 0: ephemeral)",
    )
    farm_run.add_argument(
        "--lease-seconds",
        type=float,
        default=15.0,
        metavar="S",
        help="lease/heartbeat horizon: a worker silent this long forfeits its"
        " jobs back to the queue (default 15)",
    )
    farm_run.add_argument(
        "--worker-log-dir",
        default=None,
        metavar="DIR",
        help="capture each local worker's output to DIR/worker-<i>.log",
    )
    _add_cache_options(farm_run)
    farm_run.add_argument(
        "--out-dir",
        default=DEFAULT_OUT_DIR,
        help=f"artifact directory (default {DEFAULT_OUT_DIR})",
    )
    _add_policy_options(farm_run)
    farm_run.add_argument("--quiet", action="store_true", help="suppress progress output")

    worker = sub.add_parser(
        "farm-worker",
        help="one farm worker: claim leases, execute, report (used by farm run)",
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address to join",
    )
    worker.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="executor threads in this worker process (default 1)",
    )
    worker.add_argument(
        "--worker-id",
        default=None,
        metavar="ID",
        help="stable identity for leases/heartbeats (default: <hostname>-<pid>)",
    )
    worker.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="N",
        help="max leases per claim (default: --workers)",
    )
    worker.add_argument(
        "--connect-timeout",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="per-dial socket timeout while waiting for the coordinator"
        " (default 2)",
    )
    worker.add_argument(
        "--max-connect-seconds",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="total wall-clock budget for the initial connect, with capped"
        " exponential backoff (default 30)",
    )
    worker.add_argument("--quiet", action="store_true", help="suppress progress output")

    return parser


def _cmd_list() -> int:
    width = max(len(name) for name in EXPERIMENTS)
    print("available experiments (python -m repro run <name> ...):")
    for name in sorted(EXPERIMENTS):
        spec = EXPERIMENTS[name]
        print(f"  {name:<{width}}  {spec.title}  [scales: {', '.join(spec.scales)}]")
    return 0


def _cmd_compilers(as_json: bool) -> int:
    """List the backend registry (the golden-tested ``repro compilers``)."""
    descriptions = backend_descriptions()
    if as_json:
        document = {
            "compilers": [
                {"name": name, "description": descriptions[name]}
                for name in sorted(descriptions)
            ],
            "default": list(DEFAULT_COMPILERS),
        }
        print(json.dumps(document, indent=2))
        return 0
    width = max(len(name) for name in descriptions)
    print("registered compiler backends (repro run --compilers A,B[,C...]):")
    for name in sorted(descriptions):
        print(f"  {name:<{width}}  {descriptions[name]}")
    print(
        f"default comparison: {','.join(DEFAULT_COMPILERS)}"
        " (the first name is the reference)"
    )
    return 0


def _parse_compilers(value: str) -> list[str] | None:
    """Split/normalise a ``--compilers`` value; None signals a usage error.

    Registry membership is checked here (with the mirrored unknown-name
    error the experiment/benchmark validation uses); the shape rules — at
    least two names, no duplicates, case folding — are the library's own
    :func:`normalize_compilers`, so the CLI and the API cannot drift.
    """
    names = [part for part in value.split(",") if part.strip()]
    known = set(available_backends())
    bad = [name for name in (n.strip().lower() for n in names) if name not in known]
    if bad:
        print(
            f"error: unknown compiler(s) {', '.join(sorted(set(bad)))}; "
            f"choose from {', '.join(available_backends())}",
            file=sys.stderr,
        )
        return None
    try:
        return list(normalize_compilers(names))
    except ValueError as exc:
        print(f"error: --compilers: {exc}", file=sys.stderr)
        return None


def _parse_bench_backends(value: str) -> list[str] | None:
    """Split/normalise a bench ``--compilers``/``--backends`` value.

    Unlike :func:`_parse_compilers`, a bench sweep has no reference backend,
    so a single name is fine, and the sentinel ``all`` expands to the whole
    registry.  None signals a usage error (already printed).
    """
    names = [part.strip().lower() for part in value.split(",") if part.strip()]
    if names == ["all"]:
        return list(available_backends())
    known = set(available_backends())
    bad = [name for name in names if name not in known]
    if bad:
        print(
            f"error: unknown compiler(s) {', '.join(sorted(set(bad)))}; "
            f"choose from {', '.join(available_backends())} (or 'all')",
            file=sys.stderr,
        )
        return None
    if not names:
        print("error: --backends must name at least one backend", file=sys.stderr)
        return None
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        print(
            f"error: duplicate compiler(s) {', '.join(duplicates)} in --backends",
            file=sys.stderr,
        )
        return None
    return names


def _entry_word(count: int) -> str:
    return "entry" if count == 1 else "entries"


def _sweep_ttl(cache: ResultCache, args: argparse.Namespace) -> str:
    """One TTL pass; returns the human-readable outcome line."""
    result = cache.sweep_older_than(args.older_than * _DAY_SECONDS, dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    return (
        f"{verb} {result['removed']} of {result['scanned']} cache"
        f" {_entry_word(result['scanned'])} older than {args.older_than:g}"
        f" day{'s' if args.older_than != 1 else ''}"
        f" ({result['freed_bytes'] / 1048576:.2f} MiB) from {args.cache_dir}"
    )


def _sweep_ranked(cache: ResultCache, args: argparse.Namespace) -> str:
    """One access-ranked eviction pass down to ``--max-mb``."""
    max_bytes = max(1, int(args.max_mb * 1048576))
    if args.dry_run:
        ranking = cache.eviction_ranking()
        total = sum(entry["bytes"] for entry in ranking)
        removed = freed = 0
        for entry in ranking:
            if total - freed <= max_bytes:
                break
            freed += entry["bytes"]
            removed += 1
        verb, kept = "would evict", total - freed
    else:
        result = cache.evict_ranked(max_bytes)
        removed, freed, kept = result["removed"], result["freed_bytes"], result["total_bytes"]
        verb = "evicted"
    return (
        f"{verb} {removed} access-ranked {_entry_word(removed)}"
        f" ({freed / 1048576:.2f} MiB) to fit {args.max_mb:g} MB;"
        f" {kept / 1048576:.2f} MiB kept in {args.cache_dir}"
    )


def _cmd_clean_cache(args: argparse.Namespace) -> int:
    if args.older_than is not None and not (args.older_than >= 0):
        # inverted so NaN fails the check too
        print("error: --older-than must be >= 0 days", file=sys.stderr)
        return 2
    if args.max_mb is not None and not (args.max_mb > 0):
        print("error: --max-mb must be positive", file=sys.stderr)
        return 2
    if args.max_cycles is not None and not args.watch:
        print("error: --max-cycles requires --watch", file=sys.stderr)
        return 2
    cache = ResultCache(args.cache_dir)

    if args.watch:
        if not (args.interval > 0):
            print("error: --interval must be positive", file=sys.stderr)
            return 2
        if args.dry_run:
            print("error: --watch performs real evictions; drop --dry-run", file=sys.stderr)
            return 2
        if args.older_than is None and args.max_mb is None:
            print(
                "error: --watch needs at least one policy:"
                " --older-than DAYS and/or --max-mb MB",
                file=sys.stderr,
            )
            return 2
        return _eviction_daemon(cache, args)

    if args.older_than is None and args.max_mb is None:
        # historic behaviour: a bare clean-cache empties the cache
        if args.dry_run:
            count = len(cache)
            print(f"would remove {count} cache {_entry_word(count)} from {args.cache_dir}")
            return 0
        removed = cache.clear()
        print(f"removed {removed} cache {_entry_word(removed)} from {args.cache_dir}")
        return 0
    if args.older_than is not None:
        print(_sweep_ttl(cache, args))
    if args.max_mb is not None:
        print(_sweep_ranked(cache, args))
    return 0


def _eviction_daemon(cache: ResultCache, args: argparse.Namespace) -> int:
    """``clean-cache --watch``: periodic TTL + access-ranked eviction.

    Runs until SIGINT/SIGTERM (clean exit) or ``--max-cycles`` sweeps — the
    latter is how CI exercises one daemon cycle against a shared cache.
    """
    import signal as _signal

    stop = {"flag": False}

    def _request_stop(signum: int, frame: object) -> None:
        stop["flag"] = True

    previous = {}
    for signame in ("SIGINT", "SIGTERM"):
        signum = getattr(_signal, signame, None)
        if signum is not None:
            try:
                previous[signum] = _signal.signal(signum, _request_stop)
            except (ValueError, OSError):  # pragma: no cover - non-main thread
                pass
    policies = []
    if args.older_than is not None:
        policies.append(f"ttl {args.older_than:g}d")
    if args.max_mb is not None:
        policies.append(f"cap {args.max_mb:g}MB")
    print(
        f"eviction daemon on {args.cache_dir}: {', '.join(policies)},"
        f" every {args.interval:g}s"
        + (f", {args.max_cycles} cycle(s)" if args.max_cycles is not None else ""),
        file=sys.stderr,
    )
    cycles = 0
    try:
        while not stop["flag"]:
            stamp = time.strftime("%H:%M:%S")
            if args.older_than is not None:
                print(f"[{stamp}] {_sweep_ttl(cache, args)}")
            if args.max_mb is not None:
                print(f"[{stamp}] {_sweep_ranked(cache, args)}")
            cycles += 1
            if args.max_cycles is not None and cycles >= args.max_cycles:
                break
            deadline = time.monotonic() + args.interval
            while not stop["flag"] and time.monotonic() < deadline:
                time.sleep(min(0.2, args.interval))
    finally:
        for signum, handler in previous.items():
            try:
                _signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
    print(f"eviction daemon stopped after {cycles} cycle(s)", file=sys.stderr)
    return 0


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    if args.rank == "access":
        return _cmd_cache_rank(args)
    return _cache_stats_summary(args.cache_dir, args.json)


def _cmd_cache_rank(args: argparse.Namespace) -> int:
    """``cache-stats --rank access``: the daemon's exact eviction order."""
    ranking = ResultCache(args.cache_dir).eviction_ranking()
    if args.json:
        document = [
            {
                "rank": index + 1,
                "key": entry["key"],
                "hits": entry["hits"],
                "last_use": entry["last_use"],
                "bytes": entry["bytes"],
            }
            for index, entry in enumerate(ranking)
        ]
        print(json.dumps(document, indent=2))
        return 0
    if not ranking:
        print(f"cache {args.cache_dir}: empty (nothing to rank)")
        return 0
    total = sum(entry["bytes"] for entry in ranking)
    print(
        f"eviction order for {args.cache_dir} ({len(ranking)}"
        f" {_entry_word(len(ranking))}, {total / 1048576:.2f} MiB;"
        " evicted first at the top):"
    )
    print(f"  {'rank':>4}  {'key':<18} {'hits':>5}  {'last use':<19} {'KiB':>8}")
    for index, entry in enumerate(ranking, start=1):
        stamp = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(entry["last_use"]))
        print(
            f"  {index:>4}  {entry['key'][:16] + '…':<18}"
            f" {entry['hits']:>5}  {stamp:<19} {entry['bytes'] / 1024:>8.1f}"
        )
    return 0


def _cache_stats_summary(cache_dir: str, as_json: bool = False) -> int:
    stats = ResultCache(cache_dir).stats()
    if as_json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"cache {stats['cache_dir']}:")
    print(
        f"  entries:      {stats['entries']}"
        f" ({stats['total_bytes'] / 1048576:.2f} MiB in {stats['shards']} shards)"
    )
    print(f"  legacy flat:  {stats['legacy_entries']} (migrated on next access)")
    print(f"  tmp litter:   {stats['tmp_files']}")
    print(f"  corrupt:      {stats['corrupt_entries']}")
    for label, mtime in (("oldest", stats["oldest_mtime"]), ("newest", stats["newest_mtime"])):
        if mtime is not None:
            stamp = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(mtime))
            print(f"  {label}:       {stamp}")
    access = stats["access"]
    if access["recorded"]:
        rate = access["hit_rate"]
        print(
            f"  accesses:     {access['recorded']}"
            f" ({access['hits']} hits / {access['misses']} misses,"
            f" {rate:.1%} hit rate)"
        )
        for entry in access["top_entries"][:5]:
            print(f"    {entry['key'][:16]}…  {entry['hits']} hits")
    else:
        print("  accesses:     none recorded")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .perf import (
        compare_bench,
        format_bench,
        format_comparison,
        load_bench,
        run_bench,
        write_bench,
    )

    if args.latency:
        return _cmd_bench_latency(args)
    if args.history is not None:
        return _cmd_bench_history(args)
    if args.repeat < 1:
        print("error: --repeat must be at least 1", file=sys.stderr)
        return 2
    if not (args.max_regression >= 0):  # inverted so NaN fails too
        print("error: --max-regression must be >= 0", file=sys.stderr)
        return 2
    compilers = _parse_bench_backends(args.compilers)
    if compilers is None:
        return 2
    suite = "quick" if args.quick else args.suite
    baseline_doc = None
    if args.against is not None:
        try:
            baseline_doc = load_bench(args.against)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: --against: {exc}", file=sys.stderr)
            return 2

    progress = None if args.quiet else (lambda msg: print(f"  {msg}", file=sys.stderr))
    document = run_bench(
        suite,
        compilers=compilers,
        repeat=args.repeat,
        progress=progress,
        verify=args.verify,
    )
    path = write_bench(document, args.out_dir)
    dirty_rows = [row for row in document["rows"] if row.get("verified") is False]

    comparison = None
    if baseline_doc is not None:
        comparison = compare_bench(
            baseline_doc, document, max_regression=args.max_regression
        )
        if comparison["matched"] == 0:
            # a comparison that matches nothing must not pass as "no
            # regression" — that would silently disable the CI gate whenever
            # the suite's workloads or compiler list drift
            print(
                f"error: --against: no (workload, backend) rows in common with"
                f" {args.against}; unmatched: {', '.join(comparison['missing'][:6])}"
                f"{'...' if len(comparison['missing']) > 6 else ''}",
                file=sys.stderr,
            )
            return 2

    if args.json:
        payload = {"bench": document, "path": str(path)}
        if comparison is not None:
            payload["comparison"] = comparison
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_bench(document))
        print(f"bench document: {path}")
        if args.verify:
            if dirty_rows:
                for row in dirty_rows:
                    print(
                        f"VERIFY FAILED {row['workload']} [{row['backend']}]:"
                        f" {row['violations']} violation(s)",
                        file=sys.stderr,
                    )
            else:
                print(f"verify: all {len(document['rows'])} rows clean")
        if comparison is not None:
            print()
            print(format_comparison(comparison))
    if dirty_rows:
        return 1
    return 1 if comparison is not None and comparison["regressed"] else 0


#: Version stamp of the VERIFY_*.json report document schema.
VERIFY_SCHEMA_VERSION = 1


def _cmd_verify(args: argparse.Namespace) -> int:
    """``repro verify``: compile a pinned suite and statically verify it."""
    from .analysis import format_report, report_from_dict
    from .perf.bench import BENCH_SEED, SUITES, write_document
    from .perf.workloads import compile_workload

    compilers = _parse_bench_backends(args.compilers)
    if compilers is None:
        return 2
    progress = None if args.quiet else (lambda msg: print(f"  {msg}", file=sys.stderr))

    rows: list[dict[str, object]] = []
    dirty = 0
    for workload in SUITES[args.suite]:
        if progress is not None:
            progress(f"verify {workload.name} [{', '.join(compilers)}]")
        measured = compile_workload(workload, compilers, verify=True)
        for backend in compilers:
            row = measured[backend]
            rows.append(row)
            if not row["verified"]:
                dirty += 1
    document = {
        "schema_version": VERIFY_SCHEMA_VERSION,
        "suite": args.suite,
        "seed": BENCH_SEED,
        "created_at": time.strftime("%Y-%m-%d %H:%M:%S"),
        "compilers": list(compilers),
        "clean": dirty == 0,
        "dirty_rows": dirty,
        "rows": rows,
    }
    path = write_document(document, args.out_dir, "VERIFY")

    if args.json:
        print(json.dumps({"verify": document, "path": str(path)}, indent=2, sort_keys=True))
    else:
        width = max(len(str(row["workload"])) for row in rows) if rows else 8
        for row in rows:
            report = row["verify"]
            status = (
                "clean"
                if row["verified"]
                else f"{row['violations']} violation(s)"
            )
            print(
                f"{row['workload']:<{width}} {row['backend']:<16} {status}"
                f"  ({report['ops_checked']} ops,"
                f" {report['protocol_instances']} protocol instance(s))"
            )
        print(
            f"verify suite={args.suite}: {len(rows) - dirty}/{len(rows)} rows clean"
        )
        for row in rows:
            if row["verified"]:
                continue
            print(f"\n{row['workload']} [{row['backend']}]:", file=sys.stderr)
            print(format_report(report_from_dict(row["verify"])), file=sys.stderr)
        print(f"verification report: {path}")
    return 1 if dirty else 0


def _cmd_bench_latency(args: argparse.Namespace) -> int:
    """``repro bench --latency``: the serve-path latency suite and gate."""
    from .perf import (
        format_latency,
        latency_regressed,
        run_latency,
        write_latency,
    )

    if args.against is not None or args.history is not None:
        print(
            "error: --latency is its own mode; it cannot combine with"
            " --against or --history",
            file=sys.stderr,
        )
        return 2
    for flag, value in (
        ("--requests", args.requests),
        ("--concurrency", args.concurrency),
        ("--cold-requests", args.cold_requests),
    ):
        if value < 1:
            print(f"error: {flag} must be at least 1", file=sys.stderr)
            return 2
    if args.limit is not None and args.limit < 1:
        print("error: --limit must be at least 1", file=sys.stderr)
        return 2
    if not (args.max_warm_ratio > 0):  # inverted so NaN fails too
        print("error: --max-warm-ratio must be positive", file=sys.stderr)
        return 2
    compilers = _parse_compilers(args.compilers)
    if compilers is None:
        return 2
    suite = "quick" if args.quick else args.suite
    progress = None if args.quiet else (lambda msg: print(f"  {msg}", file=sys.stderr))
    document = run_latency(
        suite,
        compilers=compilers,
        requests=args.requests,
        concurrency=args.concurrency,
        cold_requests=args.cold_requests,
        limit=args.limit,
        progress=progress,
    )
    path = write_latency(document, args.out_dir)
    reasons = latency_regressed(
        document, max_warm_ratio=args.max_warm_ratio, max_p99=args.max_p99
    )
    if args.json:
        print(
            json.dumps(
                {"latency": document, "path": str(path), "gate_failures": reasons},
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(format_latency(document))
        print(f"latency document: {path}")
        for reason in reasons:
            print(f"LATENCY GATE: {reason}", file=sys.stderr)
    return 1 if reasons else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the warm-state compile server until stopped."""
    from .serve.server import CompileServer

    if args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 2
    if args.max_devices < 1:
        print("error: --max-devices must be at least 1", file=sys.stderr)
        return 2
    if args.cache_max_mb is not None and not (args.cache_max_mb > 0):
        print("error: --cache-max-mb must be positive", file=sys.stderr)
        return 2
    try:
        policy = JobPolicy(timeout=args.timeout, retries=args.retries)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cache = _build_cache(args)
    server = CompileServer(
        args.host,
        args.port,
        workers=args.workers,
        cache=cache,
        policy=policy,
        max_devices=args.max_devices,
    )
    try:
        server.start()
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    if not args.quiet:
        caching = args.cache_dir if cache is not None else "disabled"
        print(
            f"repro serve: listening on {server.host}:{server.port}"
            f" ({args.workers} workers, cache {caching});"
            f" stop with `repro submit --port {server.port} --shutdown` or Ctrl-C",
            file=sys.stderr,
        )
    server.serve_forever()
    if not args.quiet:
        stats = server.stats()
        print(
            f"repro serve: stopped after {stats['requests_served']} requests"
            f" ({stats['compiles']} compiles, {stats['cache_hits']} cache hits,"
            f" {stats['errors']} errors)",
            file=sys.stderr,
        )
    return 0


def _format_submit_rows(responses: list, jobs: list) -> str:
    """Fixed-width per-compiler metric table for submitted jobs."""
    lines = []
    header = (
        f"{'benchmark':<10} {'architecture':<18} {'backend':<16} {'depth':>8}"
        f" {'eff CNOTs':>10} {'seconds':>8}  served"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for job, response in zip(jobs, responses):
        result = response.payload["result"]
        arch = result.get("architecture", "?")
        benchmark = result.get("benchmark", job.benchmark)
        served = "warm" if response.payload.get("warm") else "cold"
        if response.payload.get("cached"):
            served += "+cached"
        if "compilers" in result:  # multi-comparison payload
            for backend in result["compilers"]:
                lines.append(
                    f"{benchmark:<10} {arch:<18} {backend:<16}"
                    f" {result['depths'][backend]:>8.0f}"
                    f" {result['eff_cnots'][backend]:>10.0f}"
                    f" {result['seconds'][backend]:>8.3f}  {served}"
                )
        else:  # historic two-compiler payload
            for backend in ("baseline", "mech"):
                lines.append(
                    f"{benchmark:<10} {arch:<18} {backend:<16}"
                    f" {result[f'{backend}_depth']:>8.0f}"
                    f" {result[f'{backend}_eff_cnots']:>10.0f}"
                    f" {result[f'{backend}_seconds']:>8.3f}  {served}"
                )
    return "\n".join(lines)


def _cmd_submit(args: argparse.Namespace) -> int:
    """``repro submit``: client for a running ``repro serve``."""
    from .experiments.engine import Job
    from .serve.client import ServeClient, submit_jobs, wait_until_ready
    from .serve.retry import BackoffPolicy
    from .serve.schema import ServeProtocolError

    control_ops = sum(bool(flag) for flag in (args.ping, args.stats, args.shutdown))
    if control_ops > 1:
        print("error: --ping/--stats/--shutdown are mutually exclusive", file=sys.stderr)
        return 2
    if not (args.connect_timeout > 0):
        print("error: --connect-timeout must be positive", file=sys.stderr)
        return 2
    if not (args.max_connect_seconds > 0):
        print("error: --max-connect-seconds must be positive", file=sys.stderr)
        return 2
    connect_policy = BackoffPolicy(
        initial=0.1, cap=2.0, max_total_seconds=args.max_connect_seconds
    )
    if args.ping:
        if wait_until_ready(args.host, args.port, attempts=30, delay=0.2):
            print(f"repro serve at {args.host}:{args.port} is up")
            return 0
        print(f"error: no server answered at {args.host}:{args.port}", file=sys.stderr)
        return 1
    try:
        if args.stats:
            with ServeClient(
                args.host,
                args.port,
                connect_timeout=args.connect_timeout,
                connect_policy=connect_policy,
            ) as client:
                print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.shutdown:
            with ServeClient(
                args.host,
                args.port,
                connect_timeout=args.connect_timeout,
                connect_policy=connect_policy,
            ) as client:
                response = client.shutdown_server()
            if response.ok:
                print(f"repro serve at {args.host}:{args.port} is shutting down")
                return 0
            print(f"error: shutdown refused: {response.error}", file=sys.stderr)
            return 1

        compilers = _parse_compilers(args.compilers)
        if compilers is None:
            return 2
        if args.concurrency < 1:
            print("error: --concurrency must be at least 1", file=sys.stderr)
            return 2
        if args.suite is not None:
            from .perf.bench import resolve_suite
            from .perf.latency import workload_job

            workloads = resolve_suite(args.suite)
            if args.limit is not None:
                if args.limit < 1:
                    print("error: --limit must be at least 1", file=sys.stderr)
                    return 2
                workloads = workloads[: args.limit]
            jobs = [workload_job(w, compilers) for w in workloads]
        else:
            known = {name.upper() for name in BENCHMARK_NAMES}
            if args.benchmark.upper() not in known:
                print(
                    f"error: unknown benchmark {args.benchmark!r};"
                    f" choose from {', '.join(BENCHMARK_NAMES)}",
                    file=sys.stderr,
                )
                return 2
            jobs = [
                Job(
                    benchmark=args.benchmark.upper(),
                    structure=args.structure,
                    chiplet_width=args.chiplet_width,
                    rows=args.rows,
                    cols=args.cols,
                    highway_density=args.highway_density,
                    seed=args.seed,
                    compilers=tuple(compilers),
                )
            ]
        policy = JobPolicy(timeout=args.timeout) if args.timeout is not None else None
        responses = submit_jobs(
            jobs,
            args.host,
            args.port,
            concurrency=args.concurrency,
            policy=policy,
            connect_timeout=args.connect_timeout,
            connect_policy=connect_policy,
        )
    except (OSError, ServeProtocolError) as exc:
        print(
            f"error: cannot talk to repro serve at {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1

    failed = [response for response in responses if not response.ok]
    if args.json:
        print(
            json.dumps(
                [response.to_dict() for response in responses], indent=2, sort_keys=True
            )
        )
    else:
        good = [
            (job, response)
            for job, response in zip(jobs, responses)
            if response.ok
        ]
        if good:
            print(
                _format_submit_rows(
                    [response for _, response in good], [job for job, _ in good]
                )
            )
        for response in failed:
            print(f"FAILED {response.request_id}: {response.error}", file=sys.stderr)
    return 1 if failed else 0


def _cmd_bench_history(args: argparse.Namespace) -> int:
    """``repro bench --history DIR``: analysis only, no compilation."""
    from .perf import (
        HistoryError,
        compute_history,
        format_history,
        load_history,
        write_trend,
    )

    if args.against is not None:
        print(
            "error: --history and --against are mutually exclusive"
            " (--history already compares every document to its neighbours)",
            file=sys.stderr,
        )
        return 2
    if not (args.max_drift >= 0):  # inverted so NaN fails too
        print("error: --max-drift must be >= 0", file=sys.stderr)
        return 2
    try:
        documents, skipped = load_history(args.history)
    except HistoryError as exc:
        print(f"error: --history: {exc}", file=sys.stderr)
        return 2
    report = compute_history(documents, max_drift=args.max_drift, skipped=skipped)
    path = write_trend(report, args.out_dir)
    if args.json:
        print(json.dumps({"trend": report, "path": str(path)}, indent=2, sort_keys=True))
    else:
        print(format_history(report))
        print(f"trend report: {path}")
    return 1 if report["regressed"] else 0


def _validate_common_flags(args: argparse.Namespace) -> int | None:
    """Usage checks shared by ``run`` and ``resume``; an exit code or None."""
    if args.cache_max_mb is not None and not (args.cache_max_mb > 0):
        # the inverted comparison also catches NaN, which int() would crash on
        print("error: --cache-max-mb must be positive", file=sys.stderr)
        return 2
    if args.json and not args.dry_run:
        print("error: --json requires --dry-run", file=sys.stderr)
        return 2
    return None


def _build_cache(args: argparse.Namespace) -> ResultCache | None:
    if args.no_cache:
        return None
    max_bytes = (
        max(1, int(args.cache_max_mb * 1048576)) if args.cache_max_mb is not None else None
    )
    return ResultCache(args.cache_dir, max_bytes=max_bytes)


def _build_policy(args: argparse.Namespace) -> JobPolicy:
    return JobPolicy(
        timeout=args.timeout,
        retries=args.retries,
        reseed_on_retry=args.reseed_on_retry,
        on_error=args.on_error,
    )


def _workers(args: argparse.Namespace) -> int:
    return args.jobs if args.jobs > 0 else (os.cpu_count() or 1)


# --------------------------------------------------------------------------
# dry-run plan rendering (a stable contract — golden-tested)


def _plan_lines(name: str, summary: dict[str, object]) -> list[str]:
    duplicates = summary["duplicates"]
    lines = [
        f"{name}: {summary['total']} jobs, {summary['unique']} unique"
        f" ({duplicates} duplicate{'s' if duplicates != 1 else ''})"
        f" — {summary['cached']} cached, {summary['pending']} pending,"
        f" {summary['failed']} failed"
    ]
    for kind, bucket in summary["by_kind"].items():
        lines.append(
            f"  kind {kind}: {bucket['cached']} cached,"
            f" {bucket['pending']} pending, {bucket['failed']} failed"
        )
    for benchmark, bucket in summary["by_benchmark"].items():
        lines.append(
            f"  benchmark {benchmark}: {bucket['cached']} cached,"
            f" {bucket['pending']} pending, {bucket['failed']} failed"
        )
    return lines


_DRY_RUN_FOOTER = "dry-run: no jobs executed, no artifacts written"


def _checkpoint_failed_keys(checkpoint_path: Path) -> frozenset:
    """Failed-job keys from a previous run's checkpoint, if one is readable.

    Reads just the ``failed`` field (every checkpoint version records it)
    rather than fully re-hydrating the job list — dry-run classification
    needs only the keys.  No checkpoint means a clean slate (nothing to
    classify as failed); a checkpoint that exists but cannot be parsed is
    *not* the same thing, so that case warns instead of silently reporting
    zero failures.
    """
    if not checkpoint_path.exists():
        return frozenset()
    try:
        with open(checkpoint_path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(
            f"warning: ignoring unreadable checkpoint for failed-job"
            f" classification ({checkpoint_path}: {exc})",
            file=sys.stderr,
        )
        return frozenset()
    entries = doc.get("failed") if isinstance(doc, dict) else None
    return frozenset(
        str(entry["key"])
        for entry in (entries if isinstance(entries, list) else ())
        if isinstance(entry, dict) and "key" in entry
    )


def _emit_plans(plans: list[dict[str, object]], header: dict[str, object], as_json: bool) -> int:
    if as_json:
        print(json.dumps({"dry_run": True, **header, "experiments": plans}, indent=2))
        return 0
    for summary in plans:
        print("\n".join(_plan_lines(summary["experiment"], summary)))
    print(_DRY_RUN_FOOTER)
    return 0


# --------------------------------------------------------------------------
# run / resume


def _emit_experiment(
    name: str,
    records: Sequence[AnyRecord],
    report: RunReport,
    *,
    out_dir: str,
    metadata: dict[str, object],
    on_error: str,
) -> None:
    """Shared artifact/stdout emission for ``run`` and ``resume``."""
    spec = EXPERIMENTS[name]
    text = spec.format_records(records)
    if on_error == "record" and report.errors:
        # failed cells stay visible in the table and the .txt artifact
        text += "\n" + "\n".join(format_failed_rows(report.errors))
    paths = write_artifacts(
        name,
        records,
        out_dir,
        text=text,
        metadata=metadata,
        errors=report.errors if on_error == "record" else None,
    )
    print(text)
    print(f"[{name}] {report.summary()}")
    if on_error == "record":
        # skip mode stays quiet beyond the summary's failure count
        for error in report.errors:
            print(
                f"[{name}] FAILED {error.benchmark} ({error.key[:12]}…): "
                f"{error.error_type}: {error.message} "
                f"[{error.attempts} attempt{'s' if error.attempts != 1 else ''}, "
                f"{error.seconds:.1f}s]",
                file=sys.stderr,
            )
    print(f"[{name}] artifacts: {paths['json']}, {paths['csv']}")


def _cmd_run(args: argparse.Namespace) -> int:
    unknown = [name for name in args.experiments if name not in EXPERIMENTS]
    if unknown:
        print(
            f"error: unknown experiment(s) {', '.join(sorted(set(unknown)))}; "
            f"choose from {', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    known = {name.upper() for name in BENCHMARK_NAMES}
    bad = [name for name in args.benchmarks if name.upper() not in known]
    if bad or not args.benchmarks:
        what = f"unknown benchmark(s) {', '.join(sorted(set(bad)))}" if bad else "no benchmarks given"
        print(f"error: {what}; choose from {', '.join(BENCHMARK_NAMES)}", file=sys.stderr)
        return 2
    usage_error = _validate_common_flags(args)
    if usage_error is not None:
        return usage_error
    # normalise case so "bv" and "BV" share cache entries
    benchmarks = [name.upper() for name in args.benchmarks]
    compilers = _parse_compilers(args.compilers)
    if compilers is None:
        return 2
    cache = _build_cache(args)

    if args.dry_run:
        plans = []
        for name in args.experiments:
            plan = plan_experiment(
                name,
                scale=args.scale,
                benchmarks=benchmarks,
                seed=args.seed,
                cache=cache,
                compilers=compilers,
            )
            failed_keys = _checkpoint_failed_keys(
                Path(args.out_dir) / f"{name}.checkpoint.json"
            )
            plans.append(
                {"experiment": name, **plan_summary(plan, failed_keys=sorted(failed_keys))}
            )
        header = {
            "scale": args.scale,
            "benchmarks": benchmarks,
            "seed": args.seed,
            "cache_dir": None if args.no_cache else args.cache_dir,
            "compilers": compilers,
        }
        return _emit_plans(plans, header, args.json)

    policy = _build_policy(args)
    if args.verify:
        # worker processes inherit the environment, so the flag reaches every
        # compile job without touching the (cache-key-relevant) job config
        os.environ[VERIFY_ENV] = "1"
    progress = None if args.quiet else (lambda msg: print(f"  {msg}", file=sys.stderr))
    failures = 0
    for name in args.experiments:
        spec = EXPERIMENTS[name]
        if not args.quiet:
            print(f"== {name}: {spec.title} (scale={args.scale}) ==", file=sys.stderr)
        records, report = run_experiment(
            name,
            scale=args.scale,
            benchmarks=benchmarks,
            seed=args.seed,
            workers=_workers(args),
            cache=cache,
            policy=policy,
            checkpoint=Path(args.out_dir) / f"{name}.checkpoint.json",
            progress=progress,
            compilers=compilers,
        )
        _emit_experiment(
            name,
            records,
            report,
            out_dir=args.out_dir,
            metadata={
                "scale": args.scale,
                "benchmarks": benchmarks,
                "seed": args.seed,
                "compilers": compilers,
            },
            on_error=args.on_error,
        )
        failures += report.failed
    return 1 if failures else 0


# --------------------------------------------------------------------------
# compile farm


def _cmd_farm_run(args: argparse.Namespace) -> int:
    """``repro farm run``: one experiment across coordinator + workers."""
    from .farm import CommandWorkerLauncher, LocalWorkerLauncher, run_farm

    name = args.experiment
    if name not in EXPERIMENTS:
        print(
            f"error: unknown experiment {name!r};"
            f" choose from {', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    known = {candidate.upper() for candidate in BENCHMARK_NAMES}
    bad = [bench for bench in args.benchmarks if bench.upper() not in known]
    if bad or not args.benchmarks:
        what = (
            f"unknown benchmark(s) {', '.join(sorted(set(bad)))}"
            if bad
            else "no benchmarks given"
        )
        print(f"error: {what}; choose from {', '.join(BENCHMARK_NAMES)}", file=sys.stderr)
        return 2
    if args.cache_max_mb is not None and not (args.cache_max_mb > 0):
        print("error: --cache-max-mb must be positive", file=sys.stderr)
        return 2
    if args.local_workers < 1:
        print("error: --local-workers must be at least 1", file=sys.stderr)
        return 2
    if args.worker_threads < 1:
        print("error: --worker-threads must be at least 1", file=sys.stderr)
        return 2
    if not (args.lease_seconds > 0):
        print("error: --lease-seconds must be positive", file=sys.stderr)
        return 2
    benchmarks = [bench.upper() for bench in args.benchmarks]
    compilers = _parse_compilers(args.compilers)
    if compilers is None:
        return 2
    # the artifact/checkpoint metadata must match `repro run --scale small`
    # byte for byte, so the smoke alias resolves before anything records it
    scale = "small" if args.scale == "smoke" else args.scale

    cache = _build_cache(args)
    policy = _build_policy(args)
    jobs = build_experiment_jobs(
        name, scale=scale, benchmarks=benchmarks, seed=args.seed, compilers=compilers
    )
    meta = experiment_meta(
        name, scale=scale, benchmarks=benchmarks, seed=args.seed, cache=cache,
        compilers=compilers,
    )
    checkpoint = Path(args.out_dir) / f"{name}.checkpoint.json"
    launcher: object
    if args.worker_command is not None:
        launcher = CommandWorkerLauncher(args.worker_command, threads=args.worker_threads)
    else:
        launcher = LocalWorkerLauncher(threads=args.worker_threads, log_dir=args.worker_log_dir)
    progress = None if args.quiet else (lambda msg: print(f"  {msg}", file=sys.stderr))
    if not args.quiet:
        spec = EXPERIMENTS[name]
        print(
            f"== farm {name}: {spec.title} (scale={scale},"
            f" {args.local_workers} worker(s)) ==",
            file=sys.stderr,
        )
    try:
        records, report = run_farm(
            jobs,
            launcher=launcher,  # type: ignore[arg-type]
            workers=args.local_workers,
            host=args.host,
            port=args.port,
            cache=cache,
            policy=policy,
            lease_seconds=args.lease_seconds,
            checkpoint=checkpoint,
            checkpoint_meta=meta,
            progress=progress,
        )
    except RuntimeError as exc:
        print(f"error: farm run aborted: {exc}", file=sys.stderr)
        print(f"resume with: repro resume {checkpoint}", file=sys.stderr)
        return 1
    _emit_experiment(
        name,
        records,
        report,
        out_dir=args.out_dir,
        metadata={
            "scale": scale,
            "benchmarks": benchmarks,
            "seed": args.seed,
            "compilers": compilers,
        },
        on_error=args.on_error,
    )
    return 1 if report.failed else 0


def _cmd_farm_worker(args: argparse.Namespace) -> int:
    """``repro farm-worker``: join a coordinator and work until it drains."""
    from .farm.worker import main_loop_with_retry

    host, sep, port_text = args.connect.rpartition(":")
    if not sep or not host or not port_text.isdigit():
        print(
            f"error: --connect must be HOST:PORT, got {args.connect!r}",
            file=sys.stderr,
        )
        return 2
    if args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 2
    if args.batch is not None and args.batch < 1:
        print("error: --batch must be at least 1", file=sys.stderr)
        return 2
    if not (args.connect_timeout > 0):
        print("error: --connect-timeout must be positive", file=sys.stderr)
        return 2
    if not (args.max_connect_seconds > 0):
        print("error: --max-connect-seconds must be positive", file=sys.stderr)
        return 2
    progress = (
        None if args.quiet else (lambda msg: print(f"[farm-worker] {msg}", file=sys.stderr))
    )
    return main_loop_with_retry(
        host,
        int(port_text),
        workers=args.workers,
        worker_id=args.worker_id,
        batch=args.batch,
        connect_timeout=args.connect_timeout,
        max_connect_seconds=args.max_connect_seconds,
        progress=progress,
    )


def _resume_experiment_name(checkpoint: Checkpoint) -> str:
    name = checkpoint.meta.get("experiment")
    if not isinstance(name, str) or name not in EXPERIMENTS:
        raise CheckpointError(
            f"checkpoint {checkpoint.path} does not name a known experiment"
            f" (meta.experiment={name!r}); it cannot be resumed through the CLI"
        )
    return name


def _cmd_resume(args: argparse.Namespace) -> int:
    usage_error = _validate_common_flags(args)
    if usage_error is not None:
        return usage_error
    try:
        # a crash can tear the journal's final line; quarantine the torn
        # tail (preserved as *.quarantine) and resume from the good prefix
        repaired = repair_journal(journal_path_for(args.checkpoint))
        if repaired is not None:
            print(
                f"note: quarantined a torn journal tail"
                f" ({repaired['quarantined_bytes']} byte(s) →"
                f" {repaired['quarantine']}); resuming from"
                f" {repaired['kept_events']} intact event(s)",
                file=sys.stderr,
            )
        checkpoint = load_checkpoint(args.checkpoint, quarantine=True)
        name = _resume_experiment_name(checkpoint)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.cache_dir is None:
        recorded = checkpoint.meta.get("cache_dir")
        args.cache_dir = recorded if isinstance(recorded, str) else DEFAULT_CACHE_DIR
        if recorded is None and "cache_dir" in checkpoint.meta and not args.no_cache:
            # the original run opted out of caching, so nothing it completed
            # was persisted — this resume starts from scratch (but caches)
            print(
                "note: the checkpointed run used --no-cache, so completed jobs"
                f" were not persisted; every job will execute"
                f" (caching into {args.cache_dir})",
                file=sys.stderr,
            )
    cache = _build_cache(args)
    out_dir = args.out_dir if args.out_dir is not None else str(checkpoint.path.parent)

    jobs = checkpoint.jobs
    skipped_pending = 0
    if args.only_failed:
        # plan-level filter on the *checkpoint's* classification (not the
        # current cache state, which may have been swept or relocated): keep
        # the jobs the original run finished — they stay in the artifacts,
        # as cache hits or cheap re-executions — plus the failed jobs; drop
        # only jobs the checkpoint says never started
        if not checkpoint.failed:
            print(
                "error: --only-failed: the checkpoint records no failed jobs"
                " (use a plain `repro resume` to finish pending work)",
                file=sys.stderr,
            )
            return 2
        keep = checkpoint.completed_keys | checkpoint.cached_keys | checkpoint.failed_keys
        jobs = [job for job in checkpoint.jobs if config_key(job) in keep]
        skipped_pending = len(checkpoint.jobs) - len(jobs)

    if args.dry_run:
        plan = plan_jobs(jobs, cache=cache, refresh=False)
        summary = {
            "experiment": name,
            **plan_summary(plan, failed_keys=sorted(checkpoint.failed_keys)),
        }
        header = {
            "checkpoint": str(checkpoint.path),
            "cache_dir": None if args.no_cache else args.cache_dir,
            "only_failed": bool(args.only_failed),
        }
        return _emit_plans([summary], header, args.json)

    # record the cache dir actually used, so a later bare `repro resume`
    # against this checkpoint finds the results where this resume put them
    meta = dict(checkpoint.meta)
    if not args.no_cache:
        meta["cache_dir"] = args.cache_dir

    remaining = len(checkpoint.remaining_jobs())
    if not args.quiet:
        spec = EXPERIMENTS[name]
        note = (
            f" (--only-failed: skipping {skipped_pending} never-started"
            f" job{'s' if skipped_pending != 1 else ''})"
            if args.only_failed and skipped_pending
            else ""
        )
        print(
            f"== resume {name}: {spec.title}"
            f" ({remaining} of {len(checkpoint.jobs)} jobs unfinished){note} ==",
            file=sys.stderr,
        )
    progress = None if args.quiet else (lambda msg: print(f"  {msg}", file=sys.stderr))
    records, report = run_jobs_report(
        jobs,
        workers=_workers(args),
        cache=cache,
        policy=_build_policy(args),
        checkpoint=checkpoint.path,
        checkpoint_meta=meta,
        progress=progress,
    )
    _emit_experiment(
        name,
        records,
        report,
        out_dir=out_dir,
        # the artifact metadata header must match an uninterrupted run's,
        # which records only scale/benchmarks/seed
        metadata={
            key: value
            for key, value in meta.items()
            if key not in ("experiment", "cache_dir")
        },
        on_error=args.on_error,
    )
    return 1 if report.failed else 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "compilers":
            return _cmd_compilers(args.json)
        if args.command == "cache-stats":
            return _cmd_cache_stats(args)
        if args.command == "clean-cache":
            return _cmd_clean_cache(args)
        if args.command == "farm":
            return _cmd_farm_run(args)
        if args.command == "farm-worker":
            return _cmd_farm_worker(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "verify":
            return _cmd_verify(args)
        if args.command == "resume":
            return _cmd_resume(args)
        return _cmd_run(args)
    except BrokenPipeError:
        # stdout went away mid-print (`repro ... | head`); exit quietly with
        # the conventional SIGPIPE code instead of a traceback
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
