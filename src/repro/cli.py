"""``python -m repro`` / ``repro`` — unified experiment-orchestration CLI.

Runs any of the paper's figures/tables through the orchestration engine::

    repro run fig12 --scale small --jobs 4
    repro run table2 fig16 --benchmarks BV QFT --out-dir artifacts
    repro list
    repro clean-cache

Every run memoizes its per-job results in an on-disk cache (default
``.repro-cache/``), so re-running an experiment — or running a different
experiment that shares cells with a previous one — only compiles what is
missing.  Each experiment emits ``<name>.json`` / ``<name>.csv`` /
``<name>.txt`` artifacts into the output directory (default ``artifacts/``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .experiments.engine import SCALE_TIERS, ResultCache, run_jobs_report, write_artifacts
from .experiments.registry import EXPERIMENTS
from .experiments.settings import BENCHMARK_NAMES

__all__ = ["main", "build_parser"]

DEFAULT_CACHE_DIR = ".repro-cache"
DEFAULT_OUT_DIR = "artifacts"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run",
        help="regenerate one or more figures/tables through the engine",
        description="Regenerate experiments; results are cached per job config hash.",
    )
    run.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help=f"experiments to run: {', '.join(sorted(EXPERIMENTS))}",
    )
    run.add_argument("--scale", default="small", choices=list(SCALE_TIERS))
    run.add_argument(
        "--benchmarks",
        nargs="*",
        default=list(BENCHMARK_NAMES),
        metavar="NAME",
        help=f"benchmark programs (default: {' '.join(BENCHMARK_NAMES)})",
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (0 = one per CPU; default 1)",
    )
    run.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result-cache directory (default {DEFAULT_CACHE_DIR})",
    )
    run.add_argument("--no-cache", action="store_true", help="disable the result cache")
    run.add_argument(
        "--out-dir",
        default=DEFAULT_OUT_DIR,
        help=f"artifact directory (default {DEFAULT_OUT_DIR})",
    )
    run.add_argument("--quiet", action="store_true", help="suppress progress output")

    sub.add_parser("list", help="list the available experiments and scale tiers")

    clean = sub.add_parser("clean-cache", help="delete every cached result")
    clean.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)

    return parser


def _cmd_list() -> int:
    width = max(len(name) for name in EXPERIMENTS)
    print("available experiments (python -m repro run <name> ...):")
    for name in sorted(EXPERIMENTS):
        spec = EXPERIMENTS[name]
        print(f"  {name:<{width}}  {spec.title}  [scales: {', '.join(spec.scales)}]")
    return 0


def _cmd_clean_cache(cache_dir: str) -> int:
    removed = ResultCache(cache_dir).clear()
    print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'} from {cache_dir}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    unknown = [name for name in args.experiments if name not in EXPERIMENTS]
    if unknown:
        print(
            f"error: unknown experiment(s) {', '.join(sorted(set(unknown)))}; "
            f"choose from {', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    known = {name.upper() for name in BENCHMARK_NAMES}
    bad = [name for name in args.benchmarks if name.upper() not in known]
    if bad or not args.benchmarks:
        what = f"unknown benchmark(s) {', '.join(sorted(set(bad)))}" if bad else "no benchmarks given"
        print(f"error: {what}; choose from {', '.join(BENCHMARK_NAMES)}", file=sys.stderr)
        return 2
    # normalise case so "bv" and "BV" share cache entries
    benchmarks = [name.upper() for name in args.benchmarks]
    workers = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    progress = None if args.quiet else (lambda msg: print(f"  {msg}", file=sys.stderr))

    for name in args.experiments:
        spec = EXPERIMENTS[name]
        if not args.quiet:
            print(f"== {name}: {spec.title} (scale={args.scale}) ==", file=sys.stderr)
        jobs = spec.build_jobs(scale=args.scale, benchmarks=benchmarks, seed=args.seed)
        records, report = run_jobs_report(jobs, workers=workers, cache=cache, progress=progress)
        text = spec.format_records(records)
        paths = write_artifacts(
            name,
            records,
            args.out_dir,
            text=text,
            metadata={
                "scale": args.scale,
                "benchmarks": benchmarks,
                "seed": args.seed,
            },
        )
        print(text)
        print(f"[{name}] {report.summary()}")
        print(f"[{name}] artifacts: {paths['json']}, {paths['csv']}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    if args.command == "list":
        return _cmd_list()
    if args.command == "clean-cache":
        return _cmd_clean_cache(args.cache_dir)
    return _cmd_run(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
