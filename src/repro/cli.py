"""``python -m repro`` / ``repro`` — unified experiment-orchestration CLI.

Runs any of the paper's figures/tables through the orchestration engine::

    repro run fig12 --scale small --jobs 4
    repro run table2 fig16 --benchmarks BV QFT --out-dir artifacts
    repro run fig12 --timeout 3600 --retries 1 --on-error record
    repro list
    repro cache-stats
    repro clean-cache

Every run memoizes its per-job results in an on-disk cache (default
``.repro-cache/``, sharded by config-hash prefix), so re-running an
experiment — or running a different experiment that shares cells with a
previous one — only compiles what is missing.  Each experiment emits
``<name>.json`` / ``<name>.csv`` / ``<name>.txt`` artifacts plus a
``<name>.checkpoint.json`` progress file into the output directory (default
``artifacts/``).  Failed jobs (``--timeout`` exceeded, compiler crash) are
retried ``--retries`` times and then, under the default ``--on-error
record``, reported as error rows in the artifacts while every healthy job
still completes; the exit code is 1 when any job failed.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from .experiments.engine import (
    SCALE_TIERS,
    JobPolicy,
    ResultCache,
    write_artifacts,
)
from .experiments.registry import EXPERIMENTS, run_experiment
from .experiments.runner import format_failed_rows
from .experiments.settings import BENCHMARK_NAMES

__all__ = ["main", "build_parser"]

DEFAULT_CACHE_DIR = ".repro-cache"
DEFAULT_OUT_DIR = "artifacts"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run",
        help="regenerate one or more figures/tables through the engine",
        description="Regenerate experiments; results are cached per job config hash.",
    )
    run.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help=f"experiments to run: {', '.join(sorted(EXPERIMENTS))}",
    )
    run.add_argument("--scale", default="small", choices=list(SCALE_TIERS))
    run.add_argument(
        "--benchmarks",
        nargs="*",
        default=list(BENCHMARK_NAMES),
        metavar="NAME",
        help=f"benchmark programs (default: {' '.join(BENCHMARK_NAMES)})",
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (0 = one per CPU; default 1)",
    )
    run.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result-cache directory (default {DEFAULT_CACHE_DIR})",
    )
    run.add_argument("--no-cache", action="store_true", help="disable the result cache")
    run.add_argument(
        "--cache-max-mb",
        type=float,
        default=None,
        metavar="MB",
        help="LRU size cap for the result cache (least-recently-used entries"
        " are evicted once the cache grows past this; default unlimited)",
    )
    run.add_argument(
        "--out-dir",
        default=DEFAULT_OUT_DIR,
        help=f"artifact directory (default {DEFAULT_OUT_DIR})",
    )
    run.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock timeout (per attempt; default none)",
    )
    run.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="extra attempts for a failed job (default 0)",
    )
    run.add_argument(
        "--reseed-on-retry",
        action="store_true",
        help="bump the job seed on each retry (the result keeps the original cache key)",
    )
    run.add_argument(
        "--on-error",
        choices=list(JobPolicy.ON_ERROR_CHOICES),
        default="record",
        help="what to do when a job exhausts its attempts: abort the sweep"
        " (raise), drop the job (skip), or keep sweeping and emit a JobError"
        " row in the artifacts (record; default)",
    )
    run.add_argument("--quiet", action="store_true", help="suppress progress output")

    sub.add_parser("list", help="list the available experiments and scale tiers")

    stats = sub.add_parser("cache-stats", help="summarise the result cache's size and health")
    stats.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)

    clean = sub.add_parser("clean-cache", help="delete every cached result (and temp litter)")
    clean.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)

    return parser


def _cmd_list() -> int:
    width = max(len(name) for name in EXPERIMENTS)
    print("available experiments (python -m repro run <name> ...):")
    for name in sorted(EXPERIMENTS):
        spec = EXPERIMENTS[name]
        print(f"  {name:<{width}}  {spec.title}  [scales: {', '.join(spec.scales)}]")
    return 0


def _cmd_clean_cache(cache_dir: str) -> int:
    removed = ResultCache(cache_dir).clear()
    print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'} from {cache_dir}")
    return 0


def _cmd_cache_stats(cache_dir: str) -> int:
    stats = ResultCache(cache_dir).stats()
    print(f"cache {stats['cache_dir']}:")
    print(
        f"  entries:      {stats['entries']}"
        f" ({stats['total_bytes'] / 1048576:.2f} MiB in {stats['shards']} shards)"
    )
    print(f"  legacy flat:  {stats['legacy_entries']} (migrated on next access)")
    print(f"  tmp litter:   {stats['tmp_files']}")
    print(f"  corrupt:      {stats['corrupt_entries']}")
    for label, mtime in (("oldest", stats["oldest_mtime"]), ("newest", stats["newest_mtime"])):
        if mtime is not None:
            stamp = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(mtime))
            print(f"  {label}:       {stamp}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    unknown = [name for name in args.experiments if name not in EXPERIMENTS]
    if unknown:
        print(
            f"error: unknown experiment(s) {', '.join(sorted(set(unknown)))}; "
            f"choose from {', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    known = {name.upper() for name in BENCHMARK_NAMES}
    bad = [name for name in args.benchmarks if name.upper() not in known]
    if bad or not args.benchmarks:
        what = f"unknown benchmark(s) {', '.join(sorted(set(bad)))}" if bad else "no benchmarks given"
        print(f"error: {what}; choose from {', '.join(BENCHMARK_NAMES)}", file=sys.stderr)
        return 2
    if args.cache_max_mb is not None and args.cache_max_mb <= 0:
        print("error: --cache-max-mb must be positive", file=sys.stderr)
        return 2
    # normalise case so "bv" and "BV" share cache entries
    benchmarks = [name.upper() for name in args.benchmarks]
    workers = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    max_bytes = max(1, int(args.cache_max_mb * 1048576)) if args.cache_max_mb is not None else None
    cache = None if args.no_cache else ResultCache(args.cache_dir, max_bytes=max_bytes)
    policy = JobPolicy(
        timeout=args.timeout,
        retries=args.retries,
        reseed_on_retry=args.reseed_on_retry,
        on_error=args.on_error,
    )
    progress = None if args.quiet else (lambda msg: print(f"  {msg}", file=sys.stderr))

    failures = 0
    for name in args.experiments:
        spec = EXPERIMENTS[name]
        if not args.quiet:
            print(f"== {name}: {spec.title} (scale={args.scale}) ==", file=sys.stderr)
        records, report = run_experiment(
            name,
            scale=args.scale,
            benchmarks=benchmarks,
            seed=args.seed,
            workers=workers,
            cache=cache,
            policy=policy,
            checkpoint=Path(args.out_dir) / f"{name}.checkpoint.json",
            progress=progress,
        )
        text = spec.format_records(records)
        if args.on_error == "record" and report.errors:
            # failed cells stay visible in the table and the .txt artifact
            text += "\n" + "\n".join(format_failed_rows(report.errors))
        paths = write_artifacts(
            name,
            records,
            args.out_dir,
            text=text,
            metadata={
                "scale": args.scale,
                "benchmarks": benchmarks,
                "seed": args.seed,
            },
            errors=report.errors if args.on_error == "record" else None,
        )
        print(text)
        print(f"[{name}] {report.summary()}")
        if args.on_error == "record":
            # skip mode stays quiet beyond the summary's failure count
            for error in report.errors:
                print(
                    f"[{name}] FAILED {error.benchmark} ({error.key[:12]}…): "
                    f"{error.error_type}: {error.message} "
                    f"[{error.attempts} attempt{'s' if error.attempts != 1 else ''}, "
                    f"{error.seconds:.1f}s]",
                    file=sys.stderr,
                )
        failures += report.failed
        print(f"[{name}] artifacts: {paths['json']}, {paths['csv']}")
    return 1 if failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    if args.command == "list":
        return _cmd_list()
    if args.command == "cache-stats":
        return _cmd_cache_stats(args.cache_dir)
    if args.command == "clean-cache":
        return _cmd_clean_cache(args.cache_dir)
    return _cmd_run(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
