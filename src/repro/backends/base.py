"""The :class:`CompilerBackend` protocol.

A *backend* is one compiler the experiment layers can compare against any
other: the MECH highway compiler, the SABRE-routed SWAP baseline, and any
variant or ablation registered alongside them.  The protocol is deliberately
tiny — a name, a ``configure`` step binding the backend to a device, and a
``compile`` step producing the shared :class:`~repro.compiler.result.CompilationResult`
container — so a new router can join every sweep (``repro run --compilers``)
by implementing two methods and one :func:`~repro.backends.registry.register_backend`
call.

The two-phase shape (configure, then compile one or more circuits) mirrors
how the experiment runner uses compilers: a job's device/noise/seed/knobs are
fixed once, then every benchmark circuit of the cell is compiled against that
configuration.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..circuits.circuit import Circuit
from ..compiler.result import CompilationResult
from ..hardware.array import ChipletArray
from ..hardware.noise import NoiseModel

__all__ = ["CompilerBackend"]


@runtime_checkable
class CompilerBackend(Protocol):
    """One pluggable compiler in an N-way comparison.

    Implementations must be deterministic: configuring two instances with the
    same array, noise model, seed and knobs and compiling the same circuit
    must produce identical metrics — the engine's result cache and the
    backend-contract test suite both rely on it.
    """

    #: Registry key (``"mech"``, ``"baseline"``, ...); lowercase, stable.
    name: str
    #: One-line human description, shown by ``repro compilers``.
    description: str

    def configure(
        self,
        array: ChipletArray,
        *,
        noise: NoiseModel,
        seed: int = 0,
        **knobs: object,
    ) -> "CompilerBackend":
        """Bind the backend to a device and experiment knobs; returns self.

        ``knobs`` carries the union of every backend's tunables (e.g.
        ``highway_density``, ``min_components``, ``baseline_trials``); each
        backend consumes the ones it understands and must ignore the rest, so
        one job configuration can drive heterogeneous compiler sets.
        """
        ...

    def compile(self, circuit: Circuit) -> CompilationResult:
        """Compile one logical circuit; requires a prior :meth:`configure`."""
        ...
