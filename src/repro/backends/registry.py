"""String-keyed registry of compiler backends.

Concrete backends register a zero-argument factory under a stable lowercase
name; everything above — the experiment runner's :func:`compile_many`, the
engine's plan-time validation, the ``repro run --compilers`` flag and the
``repro compilers`` listing — resolves backends exclusively through
:func:`get_backend`, so adding a compiler to every sweep is one
:func:`register_backend` call.
"""

from __future__ import annotations

import threading
from collections.abc import Callable

from .base import CompilerBackend

__all__ = [
    "available_backends",
    "backend_descriptions",
    "get_backend",
    "register_backend",
    "unregister_backend",
]

#: name -> zero-arg factory producing a *fresh, unconfigured* backend.
_REGISTRY: dict[str, Callable[[], CompilerBackend]] = {}

#: Serialises registry mutation: compile-server worker threads resolve
#: backends concurrently, and the check-then-set in :func:`register_backend`
#: must not interleave with another registration of the same name.  Lookups
#: take the lock too so a reader never observes a half-applied mutation.
_REGISTRY_LOCK = threading.Lock()


def register_backend(
    name: str, factory: Callable[[], CompilerBackend], *, replace: bool = False
) -> None:
    """Register ``factory`` (typically the backend class) under ``name``.

    Names are normalised to lowercase.  Re-registering an existing name is an
    error unless ``replace=True`` — silent shadowing of a built-in backend
    would change every cache key's meaning without changing the key.

    Worker processes re-import the registry rather than inheriting it, so a
    backend that should be visible to parallel sweeps (``--jobs > 1`` on a
    spawn-based platform) must be registered at import time of a module the
    workers import — not from inside ``if __name__ == "__main__"``.  On
    fork-based platforms (Linux) the parent's registrations are inherited.
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("backend name must be a non-empty string")
    with _REGISTRY_LOCK:
        if key in _REGISTRY and not replace:
            raise ValueError(
                f"backend {key!r} is already registered; pass replace=True to override"
            )
        _REGISTRY[key] = factory


def unregister_backend(name: str) -> None:
    """Remove a registered backend (primarily for tests)."""
    with _REGISTRY_LOCK:
        _REGISTRY.pop(name.strip().lower(), None)


def get_backend(name: str) -> CompilerBackend:
    """A fresh, unconfigured instance of the backend registered as ``name``."""
    key = str(name).strip().lower()
    with _REGISTRY_LOCK:
        factory = _REGISTRY.get(key)
    if factory is None:
        raise ValueError(
            f"unknown compiler {name!r}; choose from {available_backends()}"
        )
    return factory()


def available_backends() -> list[str]:
    """Sorted names of every registered backend."""
    with _REGISTRY_LOCK:
        return sorted(_REGISTRY)


def backend_descriptions() -> dict[str, str]:
    """``name -> one-line description`` for every registered backend, sorted."""
    out: dict[str, str] = {}
    for name in available_backends():
        with _REGISTRY_LOCK:
            factory = _REGISTRY.get(name)
        if factory is None:  # unregistered between the listing and now
            continue
        backend = factory()
        out[name] = getattr(backend, "description", "") or ""
    return out
