"""Built-in compiler backends: MECH, the SABRE baseline, and their variants.

``mech`` and ``baseline`` adapt the pre-existing :class:`MechCompiler` and
:class:`BaselineCompiler` to the :class:`CompilerBackend` protocol with
*identical* construction parameters to the historic two-compiler runner, so a
default ``("baseline", "mech")`` sweep reproduces the pre-registry metrics
bit for bit.  The variants price the paper's individual mechanisms and
strengthen the baseline side of every comparison:

* ``mech-nofuse`` — MECH with the CX-RZ-CX fusion rewrite disabled;
* ``mech-noagg`` — MECH with the commuting-gate aggregation pass disabled
  (every gate routed individually, never as a multi-target highway gate);
* ``mech-singleentry`` — MECH with one entrance candidate per gate component
  (the *multi-entry* scheduling freedom of the highway ablated);
* ``sabre-x`` — extended-effort SABRE: more routing trials, deeper lookahead;
* ``sabre-noise`` — SABRE over a noise-adaptive initial layout packed into
  the lowest-noise on-chip region instead of a fixed corner.
"""

from __future__ import annotations


from ..baseline import BaselineCompiler
from ..circuits.circuit import Circuit
from ..compiler import MechCompiler
from ..compiler.result import CompilationResult
from ..hardware.array import ChipletArray
from ..hardware.noise import DEFAULT_NOISE, NoiseModel
from .registry import register_backend

__all__ = [
    "DEFAULT_COMPILERS",
    "BaselineBackend",
    "MechBackend",
    "MechNoAggBackend",
    "MechNoFuseBackend",
    "MechSingleEntryBackend",
    "SabreNoiseBackend",
    "SabreXBackend",
]

#: The historic two-compiler comparison: reference first, then MECH.
DEFAULT_COMPILERS = ("baseline", "mech")


class MechBackend:
    """Highway-mediated MECH compiler (the paper's contribution)."""

    name = "mech"
    description = "MECH highway compiler: aggregation + highway-mediated communication"
    #: Subclass hooks: the paper's circuit-rewriting pass on/off, the
    #: aggregation pass on/off, and the entrance-candidate budget per gate
    #: component (1 = single-entry ablation).
    rewrite_zz = True
    aggregate_gates = True
    entrance_candidates = 4

    def __init__(self) -> None:
        self.compiler: MechCompiler | None = None

    def configure(
        self,
        array: ChipletArray,
        *,
        noise: NoiseModel = DEFAULT_NOISE,
        seed: int = 0,
        highway_density: int = 1,
        min_components: int = 2,
        layout: object = None,
        router: object = None,
        **knobs: object,
    ) -> "MechBackend":
        self.compiler = MechCompiler(
            array,
            highway_density=highway_density,
            min_components=min_components,
            noise=noise,
            # a pre-built highway layout (matching highway_density) and a
            # pre-warmed router may be shared by the caller; both are pure
            # functions of the device, so sharing never changes the output
            layout=layout,  # type: ignore[arg-type]
            router=router,  # type: ignore[arg-type]
            rewrite_zz=self.rewrite_zz,
            aggregate_gates=self.aggregate_gates,
            entrance_candidates=self.entrance_candidates,
        )
        return self

    def compile(self, circuit: Circuit) -> CompilationResult:
        if self.compiler is None:
            raise RuntimeError(f"backend {self.name!r} must be configured before compile()")
        result = self.compiler.compile(circuit)
        result.compiler = self.name
        return result


class MechNoFuseBackend(MechBackend):
    """MECH ablation: highway communication without the ZZ-fusion rewrite."""

    name = "mech-nofuse"
    description = "MECH ablation: highway routing with the CX-RZ-CX fusion rewrite disabled"
    rewrite_zz = False


class MechNoAggBackend(MechBackend):
    """MECH ablation: the commuting-gate aggregation pass disabled.

    Every gate stays a :class:`SingleUnit` on the ordinary routed path — no
    multi-target highway gates are ever formed — so the difference to
    ``mech`` is exactly the measured price of the paper's aggregation
    mechanism (§6.2).
    """

    name = "mech-noagg"
    description = "MECH ablation: commuting-gate aggregation disabled (no highway gates)"
    aggregate_gates = False


class MechSingleEntryBackend(MechBackend):
    """MECH ablation: one entrance candidate per gate component.

    The scheduler normally scores several nearby highway entrances per data
    qubit and picks the earliest-available one — the *multi-entry* freedom
    the paper's highway is named for.  Pinning every component to its single
    nearest usable entrance prices that freedom.
    """

    name = "mech-singleentry"
    description = "MECH ablation: one highway-entrance candidate per component (multi-entry off)"
    entrance_candidates = 1


class BaselineBackend:
    """SABRE-routed SWAP baseline (the paper's "Qiskit level 3" stand-in).

    Note the compiler's trial seed is *not* derived from the job seed — it
    never was in the two-compiler runner, and keeping it fixed preserves
    cache-key-for-cache-key identical metrics for the default comparison.
    """

    name = "baseline"
    description = "SABRE-routed SWAP baseline (layout selection + SWAP-chain routing)"

    def __init__(self) -> None:
        self.compiler: BaselineCompiler | None = None

    def configure(
        self,
        array: ChipletArray,
        *,
        noise: NoiseModel = DEFAULT_NOISE,
        seed: int = 0,
        baseline_trials: int = 1,
        **knobs: object,
    ) -> "BaselineBackend":
        self.compiler = BaselineCompiler(array.topology, noise=noise, trials=baseline_trials)
        return self

    def compile(self, circuit: Circuit) -> CompilationResult:
        if self.compiler is None:
            raise RuntimeError(f"backend {self.name!r} must be configured before compile()")
        result = self.compiler.compile(circuit)
        result.compiler = self.name
        return result


class SabreXBackend:
    """Extended-effort SABRE: more trials, deeper lookahead, seeded tie-breaks.

    A stronger SWAP-chain baseline than ``baseline``: it quadruples the
    routing-trial budget (never fewer than four), doubles the extended-set
    lookahead window, and seeds the tie-breaking RNG from the job seed so
    reseeded retries genuinely explore different routings.
    """

    name = "sabre-x"
    description = "extended-effort SABRE baseline (4x routing trials, deeper lookahead)"

    def __init__(self) -> None:
        self.compiler: BaselineCompiler | None = None

    def configure(
        self,
        array: ChipletArray,
        *,
        noise: NoiseModel = DEFAULT_NOISE,
        seed: int = 0,
        baseline_trials: int = 1,
        **knobs: object,
    ) -> "SabreXBackend":
        self.compiler = BaselineCompiler(
            array.topology,
            noise=noise,
            trials=max(4, 4 * int(baseline_trials)),
            extended_set_size=40,
            seed=seed,
        )
        return self

    def compile(self, circuit: Circuit) -> CompilationResult:
        if self.compiler is None:
            raise RuntimeError(f"backend {self.name!r} must be configured before compile()")
        result = self.compiler.compile(circuit)
        result.compiler = self.name
        return result


class SabreNoiseBackend:
    """SABRE over a noise-adaptive initial layout.

    Same router and trial budget as ``baseline``; only the initial placement
    differs — logical qubits are packed into the lowest-noise connected
    region (couplers weighted by the noise model's cross-chip error ratio)
    instead of breadth-first from a fixed corner.  The delta to ``baseline``
    is the measured value of noise-aware placement for a SWAP-chain router.
    """

    name = "sabre-noise"
    description = "noise-adaptive SABRE baseline (layout packed into the lowest-noise region)"

    def __init__(self) -> None:
        self.compiler: BaselineCompiler | None = None

    def configure(
        self,
        array: ChipletArray,
        *,
        noise: NoiseModel = DEFAULT_NOISE,
        seed: int = 0,
        baseline_trials: int = 1,
        **knobs: object,
    ) -> "SabreNoiseBackend":
        self.compiler = BaselineCompiler(
            array.topology,
            noise=noise,
            trials=baseline_trials,
            layout_strategy="noise",
        )
        return self

    def compile(self, circuit: Circuit) -> CompilationResult:
        if self.compiler is None:
            raise RuntimeError(f"backend {self.name!r} must be configured before compile()")
        result = self.compiler.compile(circuit)
        result.compiler = self.name
        return result


for _backend_cls in (
    BaselineBackend,
    MechBackend,
    MechNoAggBackend,
    MechNoFuseBackend,
    MechSingleEntryBackend,
    SabreNoiseBackend,
    SabreXBackend,
):
    register_backend(_backend_cls.name, _backend_cls)
