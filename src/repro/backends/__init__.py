"""Pluggable compiler backends: protocol, registry and built-in compilers.

This package is the seam that turns the repo's core comparison from a
hard-coded MECH-vs-baseline pair into an open N-compiler sweep:

* :class:`CompilerBackend` — the two-method protocol every compiler adapts to;
* :func:`register_backend` / :func:`get_backend` / :func:`available_backends`
  — the string-keyed registry everything above dispatches through;
* built-ins — ``baseline``, ``mech``, ``mech-nofuse`` and ``sabre-x``
  (importing this package registers all four).

See :func:`repro.experiments.runner.compile_many` for the N-way driver and
``repro run --compilers a,b,c`` / ``repro compilers`` for the CLI surface.
"""

from .base import CompilerBackend
from .builtin import (
    DEFAULT_COMPILERS,
    BaselineBackend,
    MechBackend,
    MechNoAggBackend,
    MechNoFuseBackend,
    MechSingleEntryBackend,
    SabreNoiseBackend,
    SabreXBackend,
)
from .registry import (
    available_backends,
    backend_descriptions,
    get_backend,
    register_backend,
    unregister_backend,
)

__all__ = [
    "CompilerBackend",
    "DEFAULT_COMPILERS",
    "BaselineBackend",
    "MechBackend",
    "MechNoAggBackend",
    "MechNoFuseBackend",
    "MechSingleEntryBackend",
    "SabreNoiseBackend",
    "SabreXBackend",
    "available_backends",
    "backend_descriptions",
    "get_backend",
    "register_backend",
    "unregister_backend",
]
