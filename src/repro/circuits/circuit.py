"""Quantum circuit container used throughout the reproduction.

The :class:`Circuit` class is a deliberately small, explicit replacement for
the slice of Qiskit's ``QuantumCircuit`` that the MECH paper needs: an ordered
list of gates/measurements over an integer-indexed register, with

* builder methods for every gate in :mod:`repro.circuits.gates`,
* the paper's *weighted depth* metric (1-qubit gates are free, 2-qubit gates
  cost one time step, measurements cost ``meas_latency`` steps — Section 7.1),
* operation counting grouped by name,
* composition, remapping and inversion utilities used by the program
  generators and the compilers.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence

from . import gates as g
from .gates import Barrier, Gate, GateError, Measurement

__all__ = ["Circuit", "CircuitError"]


class CircuitError(ValueError):
    """Raised for structurally invalid circuit operations."""


class Circuit:
    """An ordered sequence of quantum operations over ``num_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Size of the qubit register.  Qubits are indexed ``0 .. num_qubits-1``.
    name:
        Optional human-readable name (used by benchmark programs).
    """

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits <= 0:
            raise CircuitError("a circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._ops: list[Gate] = []

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._ops)

    def __getitem__(self, index: int) -> Gate:
        return self._ops[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return self.num_qubits == other.num_qubits and self._ops == other._ops

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"num_ops={len(self._ops)})"
        )

    @property
    def operations(self) -> list[Gate]:
        """The list of operations, in program order (do not mutate)."""
        return self._ops

    # ------------------------------------------------------------------ #
    # building
    # ------------------------------------------------------------------ #
    def append(self, op: Gate) -> "Circuit":
        """Append a gate, measurement or barrier, validating qubit indices."""
        for q in op.qubits:
            if not 0 <= q < self.num_qubits:
                raise CircuitError(
                    f"qubit {q} out of range for circuit with {self.num_qubits} qubits"
                )
        self._ops.append(op)
        return self

    def extend(self, ops: Iterable[Gate]) -> "Circuit":
        """Append every operation in ``ops``."""
        for op in ops:
            self.append(op)
        return self

    # convenience builders ------------------------------------------------
    def h(self, q: int) -> "Circuit":
        return self.append(g.h(q))

    def x(self, q: int) -> "Circuit":
        return self.append(g.x(q))

    def y(self, q: int) -> "Circuit":
        return self.append(g.y(q))

    def z(self, q: int) -> "Circuit":
        return self.append(g.z(q))

    def s(self, q: int) -> "Circuit":
        return self.append(g.s(q))

    def sdg(self, q: int) -> "Circuit":
        return self.append(g.sdg(q))

    def t(self, q: int) -> "Circuit":
        return self.append(g.t(q))

    def tdg(self, q: int) -> "Circuit":
        return self.append(g.tdg(q))

    def rx(self, theta: float, q: int) -> "Circuit":
        return self.append(g.rx(theta, q))

    def ry(self, theta: float, q: int) -> "Circuit":
        return self.append(g.ry(theta, q))

    def rz(self, theta: float, q: int) -> "Circuit":
        return self.append(g.rz(theta, q))

    def p(self, theta: float, q: int) -> "Circuit":
        return self.append(g.p(theta, q))

    def cx(self, control: int, target: int) -> "Circuit":
        return self.append(g.cx(control, target))

    def cz(self, control: int, target: int) -> "Circuit":
        return self.append(g.cz(control, target))

    def cp(self, theta: float, control: int, target: int) -> "Circuit":
        return self.append(g.cp(theta, control, target))

    def crz(self, theta: float, control: int, target: int) -> "Circuit":
        return self.append(g.crz(theta, control, target))

    def swap(self, a: int, b: int) -> "Circuit":
        return self.append(g.swap(a, b))

    def measure(self, q: int, cbit: int | None = None) -> "Circuit":
        return self.append(g.measure(q, cbit))

    def measure_all(self) -> "Circuit":
        for q in range(self.num_qubits):
            self.measure(q)
        return self

    def barrier(self, qubits: Iterable[int] | None = None) -> "Circuit":
        qs = tuple(qubits) if qubits is not None else tuple(range(self.num_qubits))
        return self.append(g.barrier(qs))

    def multi_target_cx(self, control: int, targets: Sequence[int]) -> "Circuit":
        return self.append(g.multi_target_cx(control, targets))

    def multi_target_cp(self, theta: float, control: int, targets: Sequence[int]) -> "Circuit":
        return self.append(g.multi_target_cp(theta, control, targets))

    # ------------------------------------------------------------------ #
    # analysis
    # ------------------------------------------------------------------ #
    def count_ops(self) -> dict[str, int]:
        """Return a mapping from gate name to occurrence count."""
        return dict(Counter(op.name for op in self._ops))

    def num_ops(self, *names: str) -> int:
        """Number of operations whose name is in ``names`` (all ops if empty)."""
        if not names:
            return len(self._ops)
        wanted = set(names)
        return sum(1 for op in self._ops if op.name in wanted)

    def num_two_qubit_ops(self) -> int:
        """Number of 2-qubit gates (controlled gates and SWAPs)."""
        return sum(1 for op in self._ops if op.is_two_qubit)

    def num_measurements(self) -> int:
        """Number of measurement operations."""
        return sum(1 for op in self._ops if op.is_measurement)

    def two_qubit_gates(self) -> list[Gate]:
        """All 2-qubit gates, in program order."""
        return [op for op in self._ops if op.is_two_qubit]

    def depth(
        self,
        *,
        meas_latency: float = 2.0,
        one_qubit_weight: float = 0.0,
        two_qubit_weight: float = 1.0,
    ) -> float:
        """Weighted circuit depth as defined in Section 7.1 of the paper.

        Only 2-qubit gates and measurements contribute by default; measurements
        cost ``meas_latency`` time steps (default 2, following the IBM
        calibration the paper cites).  Barriers synchronise all spanned qubits
        but add no time.
        """
        clock = [0.0] * self.num_qubits
        for op in self._ops:
            if op.is_barrier:
                sync = max((clock[q] for q in op.qubits), default=0.0)
                for q in op.qubits:
                    clock[q] = sync
                continue
            if op.is_measurement:
                weight = float(meas_latency)
            elif op.num_qubits >= 2:
                weight = float(two_qubit_weight)
            else:
                weight = float(one_qubit_weight)
            start = max(clock[q] for q in op.qubits)
            finish = start + weight
            for q in op.qubits:
                clock[q] = finish
        return max(clock, default=0.0)

    def qubits_used(self) -> list[int]:
        """Sorted list of qubit indices that appear in at least one operation."""
        used = set()
        for op in self._ops:
            used.update(op.qubits)
        return sorted(used)

    # ------------------------------------------------------------------ #
    # transformation
    # ------------------------------------------------------------------ #
    def copy(self, name: str | None = None) -> "Circuit":
        """Return a shallow copy (gates are immutable, so this is safe)."""
        out = Circuit(self.num_qubits, name or self.name)
        out._ops = list(self._ops)
        return out

    def compose(self, other: "Circuit") -> "Circuit":
        """Append all operations of ``other`` to a copy of this circuit."""
        if other.num_qubits > self.num_qubits:
            raise CircuitError(
                "cannot compose a larger circuit onto a smaller one "
                f"({other.num_qubits} > {self.num_qubits})"
            )
        out = self.copy()
        out.extend(other.operations)
        return out

    def remap(self, mapping: Mapping[int, int], num_qubits: int | None = None) -> "Circuit":
        """Return a copy with every qubit index ``q`` replaced by ``mapping[q]``.

        ``num_qubits`` defaults to the current register size; supply a larger
        value when embedding a logical circuit into a physical device.
        """
        size = num_qubits if num_qubits is not None else self.num_qubits
        out = Circuit(size, self.name)
        for op in self._ops:
            new_qubits = tuple(mapping[q] for q in op.qubits)
            out.append(_rebuild(op, new_qubits))
        return out

    def inverse(self) -> "Circuit":
        """Return the inverse circuit (measurements and barriers not allowed)."""
        out = Circuit(self.num_qubits, f"{self.name}_dg")
        for op in reversed(self._ops):
            if op.is_measurement or op.is_barrier:
                raise CircuitError("cannot invert a circuit containing measurements")
            out.append(_invert(op))
        return out

    def without_measurements(self) -> "Circuit":
        """Return a copy with all measurements removed."""
        out = Circuit(self.num_qubits, self.name)
        out._ops = [op for op in self._ops if not op.is_measurement]
        return out

    def filtered(self, predicate: Callable[[Gate], bool]) -> "Circuit":
        """Return a copy containing only operations for which ``predicate`` holds."""
        out = Circuit(self.num_qubits, self.name)
        out._ops = [op for op in self._ops if predicate(op)]
        return out


_INVERSES = {
    "h": "h",
    "x": "x",
    "y": "y",
    "z": "z",
    "cx": "cx",
    "cz": "cz",
    "swap": "swap",
    "id": "id",
    "s": "sdg",
    "sdg": "s",
    "t": "tdg",
    "tdg": "t",
}

_PARAM_NEGATE = {"rx", "ry", "rz", "p", "cp", "crz", "mcp"}


def _invert(op: Gate) -> Gate:
    """Return the inverse of a unitary gate."""
    if op.name in _INVERSES:
        return Gate(_INVERSES[op.name], op.qubits, op.params)
    if op.name in _PARAM_NEGATE:
        return Gate(op.name, op.qubits, tuple(-p for p in op.params))
    if op.name == "mcx":
        return Gate("mcx", op.qubits, op.params)
    raise GateError(f"gate {op.name!r} has no known inverse")


def _rebuild(op: Gate, new_qubits: Sequence[int]) -> Gate:
    """Rebuild ``op`` on a different set of qubits, preserving its type."""
    if isinstance(op, Measurement):
        return Measurement("measure", tuple(new_qubits), cbit=op.cbit)
    if isinstance(op, Barrier):
        return Barrier("barrier", tuple(new_qubits))
    return Gate(op.name, tuple(new_qubits), op.params, op.condition)


def _rebuild_trusted(op: Gate, new_qubits: tuple[int, ...]) -> Gate:
    """Hot-path :func:`_rebuild` for injective remappings of validated gates.

    ``new_qubits`` must be a tuple of distinct built-in ``int``s (routers remap
    through injective logical-to-physical layouts, so distinctness holds by
    construction); measurements and barriers still take the validating path.
    """
    if type(op) is Gate:
        return Gate.trusted(op.name, new_qubits, op.params, op.condition)
    return _rebuild(op, new_qubits)
