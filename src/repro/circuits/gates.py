"""Gate definitions for the reproduction's circuit intermediate representation.

The MECH paper reasons about circuits at the level of 1-qubit gates, 2-qubit
controlled gates (CNOT, CZ, controlled-phase), SWAP/bridge macros, multi-target
controlled gates produced by the aggregation pass, and measurements (including
mid-circuit measurements used by the highway protocol).  This module defines a
small, explicit gate vocabulary that is shared by the circuit container, the
commutation analysis, the simulator and both compilers.

Every gate is an immutable :class:`Gate` instance.  Gates know

* their *name* (a lower-case mnemonic such as ``"cx"``),
* the qubits they act on (``qubits``; for controlled gates the control comes
  first),
* optional real *parameters* (rotation angles),
* whether they are *diagonal* in the computational basis on each qubit, which
  is what the commutation rules need,
* a unitary matrix (for the gates the statevector simulator supports).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "Gate",
    "Measurement",
    "Barrier",
    "GateError",
    "ONE_QUBIT_GATES",
    "TWO_QUBIT_GATES",
    "CONTROLLED_GATES",
    "h",
    "x",
    "y",
    "z",
    "s",
    "sdg",
    "t",
    "tdg",
    "rx",
    "ry",
    "rz",
    "p",
    "cx",
    "cz",
    "cp",
    "crz",
    "swap",
    "measure",
    "barrier",
    "multi_target_cx",
    "multi_target_cp",
]


class GateError(ValueError):
    """Raised when a gate is constructed with inconsistent arguments."""


#: 1-qubit gate names understood by the IR.
ONE_QUBIT_GATES = frozenset(
    {"h", "x", "y", "z", "s", "sdg", "t", "tdg", "rx", "ry", "rz", "p", "id"}
)

#: 2-qubit gate names understood by the IR.
TWO_QUBIT_GATES = frozenset({"cx", "cz", "cp", "crz", "swap"})

#: 2-qubit *controlled* gate names (control qubit listed first).
CONTROLLED_GATES = frozenset({"cx", "cz", "cp", "crz"})

#: Gates that are diagonal in the computational basis on every qubit they touch.
_DIAGONAL_GATES = frozenset({"z", "s", "sdg", "t", "tdg", "rz", "p", "cz", "cp", "crz", "id"})

#: Gate names whose action on the *control* qubit is diagonal.
_CONTROL_DIAGONAL = CONTROLLED_GATES | _DIAGONAL_GATES

#: Multi-target controlled gate names produced by the aggregation pass.
_MULTI_TARGET_GATES = frozenset({"mcx", "mcp"})


@dataclass(frozen=True)
class Gate:
    """A quantum gate applied to one or more qubits.

    Parameters
    ----------
    name:
        Lower-case gate mnemonic (``"h"``, ``"cx"``, ``"mcx"``, ...).
    qubits:
        Logical or physical qubit indices the gate acts on.  For controlled
        gates the control is ``qubits[0]``; for multi-target gates the control
        is ``qubits[0]`` and all remaining entries are targets.
    params:
        Optional tuple of real parameters (rotation angles, phases).
    condition:
        Optional classical condition ``(cbits, value)``: the gate is applied
        only when the XOR (parity) of the listed classical bits equals
        ``value``.  This models the dynamic-circuit Pauli corrections used by
        the measurement-based GHZ preparation and the highway protocol.
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = field(default=())
    condition: tuple[tuple[int, ...], int] | None = field(default=None)

    def __post_init__(self) -> None:
        if not self.name:
            raise GateError("gate name must be a non-empty string")
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        if self.condition is not None:
            cbits, value = self.condition
            object.__setattr__(
                self, "condition", (tuple(int(c) for c in cbits), int(value) & 1)
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise GateError(f"gate {self.name} has repeated qubits: {self.qubits}")
        if self.name in ONE_QUBIT_GATES and len(self.qubits) != 1:
            raise GateError(f"{self.name} acts on exactly one qubit, got {self.qubits}")
        if self.name in TWO_QUBIT_GATES and len(self.qubits) != 2:
            raise GateError(f"{self.name} acts on exactly two qubits, got {self.qubits}")
        if self.name in _MULTI_TARGET_GATES and len(self.qubits) < 2:
            raise GateError(f"{self.name} needs a control and at least one target")

    @classmethod
    def trusted(
        cls,
        name: str,
        qubits: tuple[int, ...],
        params: tuple[float, ...] = (),
        condition: tuple[tuple[int, ...], int] | None = None,
    ) -> "Gate":
        """Build a plain :class:`Gate` without re-running validation.

        Only for hot paths that rebuild *already validated* gates on new qubit
        indices (router/scheduler emission, circuit remapping): ``qubits`` must
        be a tuple of distinct built-in ``int``s and ``params`` an
        already-coerced float tuple, exactly as found on an existing gate.
        Always builds a plain ``Gate`` — subclasses (measurements, barriers)
        carry extra invariants and go through their validating constructors.
        """
        gate = object.__new__(Gate)
        object.__setattr__(gate, "name", name)
        object.__setattr__(gate, "qubits", qubits)
        object.__setattr__(gate, "params", params)
        object.__setattr__(gate, "condition", condition)
        return gate

    # ------------------------------------------------------------------ #
    # classification helpers
    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        """Number of qubits the gate acts on."""
        return len(self.qubits)

    @property
    def is_measurement(self) -> bool:
        return False

    @property
    def is_barrier(self) -> bool:
        return False

    @property
    def is_one_qubit(self) -> bool:
        return self.name in ONE_QUBIT_GATES

    @property
    def is_two_qubit(self) -> bool:
        return self.name in TWO_QUBIT_GATES

    @property
    def is_controlled(self) -> bool:
        """True for 2-qubit controlled gates (cx, cz, cp, crz)."""
        return self.name in CONTROLLED_GATES

    @property
    def is_multi_target(self) -> bool:
        """True for aggregated multi-target controlled gates (mcx, mcp)."""
        return self.name in _MULTI_TARGET_GATES

    @property
    def control(self) -> int:
        """The control qubit of a controlled or multi-target gate."""
        if not (self.is_controlled or self.is_multi_target):
            raise GateError(f"gate {self.name} has no control qubit")
        return self.qubits[0]

    @property
    def target(self) -> int:
        """The target qubit of a 2-qubit controlled gate."""
        if not self.is_controlled:
            raise GateError(f"gate {self.name} has no single target qubit")
        return self.qubits[1]

    @property
    def targets(self) -> tuple[int, ...]:
        """All target qubits of a controlled or multi-target gate."""
        if not (self.is_controlled or self.is_multi_target):
            raise GateError(f"gate {self.name} has no target qubits")
        return self.qubits[1:]

    @property
    def is_diagonal(self) -> bool:
        """True if the gate is diagonal in the computational basis."""
        return self.name in _DIAGONAL_GATES

    def diagonal_on(self, qubit: int) -> bool:
        """Whether the gate acts diagonally on ``qubit``.

        Controlled gates are diagonal on their control; CZ/CP/CRZ are diagonal
        on both qubits; everything else is diagonal only if the whole gate is.
        """
        if qubit not in self.qubits:
            return True
        if self.is_diagonal:
            return True
        if (self.is_controlled or self.is_multi_target) and qubit == self.control:
            return True
        return False

    # ------------------------------------------------------------------ #
    # matrices
    # ------------------------------------------------------------------ #
    def matrix(self) -> np.ndarray:
        """Return the unitary matrix of the gate.

        Supported for all 1- and 2-qubit gates in the vocabulary.  Multi-target
        gates have no fixed-size matrix; the simulator decomposes them instead.
        """
        return _gate_matrix(self.name, self.params)

    def with_condition(self, cbits: Iterable[int], value: int = 1) -> "Gate":
        """Return a copy of the gate conditioned on the parity of ``cbits``.

        The gate's own fields are already validated/coerced, so only the
        condition is normalised here (the exact coercion ``__post_init__``
        would apply) before taking the trusted construction path.
        """
        return Gate.trusted(
            self.name,
            self.qubits,
            self.params,
            (tuple(int(c) for c in cbits), int(value) & 1),
        )

    def components(self) -> tuple["Gate", ...]:
        """Decompose a multi-target gate into its 2-qubit components.

        ``mcx(c; t1..tk)`` decomposes into ``cx(c, ti)`` for each target, all of
        which mutually commute (they share the control, on which each acts
        diagonally).  For plain gates, returns ``(self,)``.
        """
        if not self.is_multi_target:
            return (self,)
        base = "cx" if self.name == "mcx" else "cp"
        return tuple(
            Gate(base, (self.control, t), self.params) for t in self.targets
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = f", params={self.params}" if self.params else ""
        return f"Gate({self.name!r}, qubits={self.qubits}{params})"


@dataclass(frozen=True)
class Measurement(Gate):
    """A computational-basis measurement of a single qubit.

    The classical bit index defaults to the measured qubit.  Mid-circuit
    measurements (used by the highway protocol to consume GHZ states) are
    ordinary :class:`Measurement` instances appearing before the end of the
    circuit.
    """

    cbit: int = -1

    def __post_init__(self) -> None:
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        if self.name != "measure":
            raise GateError("Measurement must be named 'measure'")
        if len(self.qubits) != 1:
            raise GateError("Measurement acts on exactly one qubit")
        if self.cbit < 0:
            object.__setattr__(self, "cbit", self.qubits[0])

    @property
    def is_measurement(self) -> bool:
        return True

    def matrix(self) -> np.ndarray:
        raise GateError("measurements have no unitary matrix")


@dataclass(frozen=True)
class Barrier(Gate):
    """A scheduling barrier across a set of qubits.

    Barriers carry no cost; they simply prevent the depth scheduler and the
    commutation analysis from moving operations across them.
    """

    def __post_init__(self) -> None:
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        if self.name != "barrier":
            raise GateError("Barrier must be named 'barrier'")
        if not self.qubits:
            raise GateError("Barrier must span at least one qubit")

    @property
    def is_barrier(self) -> bool:
        return True

    def matrix(self) -> np.ndarray:
        raise GateError("barriers have no unitary matrix")


# ---------------------------------------------------------------------- #
# constructors
# ---------------------------------------------------------------------- #
def h(q: int) -> Gate:
    """Hadamard gate."""
    return Gate("h", (q,))


def x(q: int) -> Gate:
    """Pauli-X gate."""
    return Gate("x", (q,))


def y(q: int) -> Gate:
    """Pauli-Y gate."""
    return Gate("y", (q,))


def z(q: int) -> Gate:
    """Pauli-Z gate."""
    return Gate("z", (q,))


def s(q: int) -> Gate:
    """Phase gate S = diag(1, i)."""
    return Gate("s", (q,))


def sdg(q: int) -> Gate:
    """Inverse phase gate."""
    return Gate("sdg", (q,))


def t(q: int) -> Gate:
    """T gate = diag(1, e^{i pi/4})."""
    return Gate("t", (q,))


def tdg(q: int) -> Gate:
    """Inverse T gate."""
    return Gate("tdg", (q,))


def rx(theta: float, q: int) -> Gate:
    """Rotation about X by ``theta``."""
    return Gate("rx", (q,), (theta,))


def ry(theta: float, q: int) -> Gate:
    """Rotation about Y by ``theta``."""
    return Gate("ry", (q,), (theta,))


def rz(theta: float, q: int) -> Gate:
    """Rotation about Z by ``theta``."""
    return Gate("rz", (q,), (theta,))


def p(theta: float, q: int) -> Gate:
    """Phase gate diag(1, e^{i theta})."""
    return Gate("p", (q,), (theta,))


def cx(control: int, target: int) -> Gate:
    """CNOT gate."""
    return Gate("cx", (control, target))


def cz(control: int, target: int) -> Gate:
    """Controlled-Z gate."""
    return Gate("cz", (control, target))


def cp(theta: float, control: int, target: int) -> Gate:
    """Controlled-phase gate."""
    return Gate("cp", (control, target), (theta,))


def crz(theta: float, control: int, target: int) -> Gate:
    """Controlled-RZ gate."""
    return Gate("crz", (control, target), (theta,))


def swap(a: int, b: int) -> Gate:
    """SWAP gate (3 CNOTs on hardware)."""
    return Gate("swap", (a, b))


def measure(q: int, cbit: int | None = None) -> Measurement:
    """Computational-basis measurement of qubit ``q`` into classical bit ``cbit``."""
    return Measurement("measure", (q,), cbit=q if cbit is None else cbit)


def barrier(qubits: Iterable[int]) -> Barrier:
    """A barrier across ``qubits``."""
    return Barrier("barrier", tuple(qubits))


def multi_target_cx(control: int, targets: Sequence[int]) -> Gate:
    """Aggregated multi-target CNOT sharing a single control qubit."""
    return Gate("mcx", (control, *targets))


def multi_target_cp(theta: float, control: int, targets: Sequence[int]) -> Gate:
    """Aggregated multi-target controlled-phase sharing a single control qubit."""
    return Gate("mcp", (control, *targets), (theta,))


# ---------------------------------------------------------------------- #
# matrices
# ---------------------------------------------------------------------- #
_SQRT2_INV = 1.0 / math.sqrt(2.0)

_FIXED_MATRICES = {
    "id": np.eye(2, dtype=complex),
    "h": np.array([[_SQRT2_INV, _SQRT2_INV], [_SQRT2_INV, -_SQRT2_INV]], dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    "t": np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex),
    "tdg": np.array([[1, 0], [0, np.exp(-1j * math.pi / 4)]], dtype=complex),
    "cx": np.array(
        [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
    ),
    "cz": np.diag([1, 1, 1, -1]).astype(complex),
    "swap": np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
    ),
}


def _gate_matrix(name: str, params: tuple[float, ...]) -> np.ndarray:
    """Return the unitary matrix of a named gate with the given parameters."""
    if name in _FIXED_MATRICES:
        return _FIXED_MATRICES[name].copy()
    if name == "rx":
        (theta,) = params
        c, sn = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[c, -1j * sn], [-1j * sn, c]], dtype=complex)
    if name == "ry":
        (theta,) = params
        c, sn = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[c, -sn], [sn, c]], dtype=complex)
    if name == "rz":
        (theta,) = params
        return np.array(
            [[np.exp(-1j * theta / 2), 0], [0, np.exp(1j * theta / 2)]], dtype=complex
        )
    if name == "p":
        (theta,) = params
        return np.array([[1, 0], [0, np.exp(1j * theta)]], dtype=complex)
    if name == "cp":
        (theta,) = params
        return np.diag([1, 1, 1, np.exp(1j * theta)]).astype(complex)
    if name == "crz":
        (theta,) = params
        return np.diag(
            [1, 1, np.exp(-1j * theta / 2), np.exp(1j * theta / 2)]
        ).astype(complex)
    raise GateError(f"gate {name!r} has no matrix representation")
