"""Pairwise gate commutation rules.

The MECH compiler exploits the fact that controlled gates sharing the same
control qubit commute with each other (each acts diagonally on the control),
and that CNOTs sharing the same *target* also commute (each acts as an X-type
operation on the target).  The rules implemented here classify, per qubit, the
action of a gate as *Z-type* (diagonal in the computational basis), *X-type*
(a pure bit-flip-like action) or *generic*, and declare two gates commuting on
a shared qubit whenever their actions on that qubit are both Z-type or both
X-type.  Gates with disjoint supports always commute.

This is the same conservative rule set used by mainstream transpilers for
commutation-aware scheduling: it never reports a false "commutes", it may miss
exotic commutations (e.g. between generic rotations), which is acceptable for
scheduling purposes.
"""

from __future__ import annotations

from .gates import Gate

__all__ = ["qubit_action", "commutes", "commutes_on_qubit"]

#: Gate names whose action on any qubit they touch is diagonal (Z-type).
_Z_TYPE_GATES = frozenset({"z", "s", "sdg", "t", "tdg", "rz", "p", "id", "cz", "cp", "crz"})

#: 1-qubit gate names whose action is X-type (commute with each other).
_X_TYPE_GATES = frozenset({"x", "rx"})


def qubit_action(op: Gate, qubit: int) -> str:
    """Classify the action of ``op`` on ``qubit`` as ``"z"``, ``"x"`` or ``"other"``.

    Measurements are Z-type for commutation purposes only with other diagonal
    operations *before* them; to stay conservative we classify them as
    ``"other"`` so that nothing is reordered across a measurement on the same
    qubit.  Barriers are ``"other"`` on every qubit they span.
    """
    if qubit not in op.qubits:
        raise ValueError(f"qubit {qubit} is not acted on by {op}")
    if op.is_measurement or op.is_barrier:
        return "other"
    name = op.name
    if name in _Z_TYPE_GATES:
        return "z"
    if name in _X_TYPE_GATES:
        return "x"
    if name in ("cx", "mcx"):
        # control is diagonal (Z-type), targets are X-type
        return "z" if qubit == op.qubits[0] else "x"
    if name == "mcp":
        return "z"
    return "other"


def commutes_on_qubit(a: Gate, b: Gate, qubit: int) -> bool:
    """Whether the actions of ``a`` and ``b`` on a shared ``qubit`` commute."""
    ta = qubit_action(a, qubit)
    tb = qubit_action(b, qubit)
    if ta == "other" or tb == "other":
        return False
    return ta == tb


def commutes(a: Gate, b: Gate) -> bool:
    """Whether gates ``a`` and ``b`` commute.

    Two gates commute if they act on disjoint qubits, or if on every shared
    qubit their local actions are of the same (Z or X) type.  Barriers never
    commute with anything sharing a qubit.
    """
    shared = set(a.qubits) & set(b.qubits)
    if not shared:
        return True
    if a.is_barrier or b.is_barrier:
        return False
    return all(commutes_on_qubit(a, b, q) for q in shared)
