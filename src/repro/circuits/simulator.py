"""Statevector simulator with mid-circuit measurement and classical feedback.

The simulator exists to *verify* the building blocks of the reproduction on
small instances:

* the constant-depth, measurement-based GHZ preparation (paper Figs. 5-8),
* the highway communication protocol that executes a multi-target CNOT by
  consuming a GHZ state (paper Fig. 3),
* that SWAP/bridge-based routing preserves circuit semantics up to the final
  qubit permutation.

It is an explicit, dense ``numpy`` implementation: the state is stored as a
rank-``n`` tensor with one axis of length 2 per qubit.  Measurements collapse
the state and record the outcome in a classical register; gates carrying a
:class:`~repro.circuits.gates.Gate` ``condition`` are applied only when the
parity of the referenced classical bits matches, which is how the dynamic-
circuit Pauli corrections of the highway protocol are modelled.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from .circuit import Circuit
from .gates import Gate, Measurement

__all__ = ["Simulator", "SimulationResult", "statevectors_equal", "circuit_unitary"]


class SimulationResult:
    """Final state and classical bits produced by :meth:`Simulator.run`."""

    def __init__(self, statevector: np.ndarray, classical_bits: dict[int, int]) -> None:
        self.statevector = statevector
        self.classical_bits = dict(classical_bits)

    def probabilities(self) -> np.ndarray:
        """Probability of each computational basis state."""
        return np.abs(self.statevector) ** 2

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulationResult(dim={self.statevector.shape[0]}, "
            f"classical_bits={self.classical_bits})"
        )


class Simulator:
    """Dense statevector simulator over ``num_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Number of qubits; memory is ``O(2**num_qubits)`` so keep it small
        (verification uses at most ~14 qubits).
    seed:
        Seed for the random generator used to sample measurement outcomes.
    """

    #: Practical ceiling to avoid accidentally allocating huge state vectors.
    MAX_QUBITS = 22

    def __init__(self, num_qubits: int, seed: int | None = None) -> None:
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        if num_qubits > self.MAX_QUBITS:
            raise ValueError(
                f"simulator limited to {self.MAX_QUBITS} qubits, got {num_qubits}"
            )
        self.num_qubits = num_qubits
        self._rng = np.random.default_rng(seed)
        self._state = np.zeros((2,) * num_qubits, dtype=complex)
        self._state[(0,) * num_qubits] = 1.0
        self.classical_bits: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # state access
    # ------------------------------------------------------------------ #
    @property
    def statevector(self) -> np.ndarray:
        """The current state as a flat vector of length ``2**num_qubits``.

        The basis ordering treats qubit 0 as the most significant bit, i.e.
        amplitude ``statevector[b]`` corresponds to the bitstring of ``b``
        written with qubit 0 first.
        """
        return self._state.reshape(-1).copy()

    def set_statevector(self, vector: Sequence[complex]) -> None:
        """Overwrite the state with a (normalised) vector."""
        arr = np.asarray(vector, dtype=complex).reshape(-1)
        if arr.shape[0] != 2**self.num_qubits:
            raise ValueError("statevector has the wrong dimension")
        norm = np.linalg.norm(arr)
        if not np.isclose(norm, 1.0, atol=1e-9):
            if norm == 0:
                raise ValueError("statevector must be non-zero")
            arr = arr / norm
        self._state = arr.reshape((2,) * self.num_qubits)

    def reset(self) -> None:
        """Return to |0...0> and clear the classical register."""
        self._state = np.zeros((2,) * self.num_qubits, dtype=complex)
        self._state[(0,) * self.num_qubits] = 1.0
        self.classical_bits = {}

    # ------------------------------------------------------------------ #
    # gate application
    # ------------------------------------------------------------------ #
    def apply(self, op: Gate) -> int | None:
        """Apply a gate, measurement or barrier; return the outcome if measuring."""
        if op.is_barrier:
            return None
        if op.condition is not None and not self._condition_satisfied(op):
            return None
        if op.is_measurement:
            assert isinstance(op, Measurement)
            outcome = self.measure(op.qubits[0])
            self.classical_bits[op.cbit] = outcome
            return outcome
        if op.is_multi_target:
            for component in op.components():
                self._apply_unitary(component)
            return None
        self._apply_unitary(op)
        return None

    def run(self, circuit: Circuit) -> SimulationResult:
        """Execute every operation of ``circuit`` in order."""
        if circuit.num_qubits > self.num_qubits:
            raise ValueError(
                f"circuit needs {circuit.num_qubits} qubits, simulator has {self.num_qubits}"
            )
        for op in circuit:
            self.apply(op)
        return SimulationResult(self.statevector, self.classical_bits)

    def measure(self, qubit: int) -> int:
        """Measure ``qubit`` in the computational basis, collapsing the state."""
        self._check_qubit(qubit)
        axis = qubit
        moved = np.moveaxis(self._state, axis, 0)
        prob_one = float(np.sum(np.abs(moved[1]) ** 2))
        prob_one = min(max(prob_one, 0.0), 1.0)
        outcome = 1 if self._rng.random() < prob_one else 0
        prob = prob_one if outcome == 1 else 1.0 - prob_one
        if prob <= 1e-12:
            # numerical guard: the other branch is (essentially) impossible
            outcome = 1 - outcome
            prob = 1.0 - prob
        new = np.zeros_like(moved)
        new[outcome] = moved[outcome] / np.sqrt(prob)
        self._state = np.moveaxis(new, 0, axis)
        return outcome

    def expectation_z(self, qubit: int) -> float:
        """Expectation value of Pauli-Z on ``qubit`` (no collapse)."""
        self._check_qubit(qubit)
        moved = np.moveaxis(self._state, qubit, 0)
        p0 = float(np.sum(np.abs(moved[0]) ** 2))
        p1 = float(np.sum(np.abs(moved[1]) ** 2))
        return p0 - p1

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _condition_satisfied(self, op: Gate) -> bool:
        cbits, value = op.condition  # type: ignore[misc]
        parity = 0
        for c in cbits:
            parity ^= self.classical_bits.get(c, 0)
        return parity == value

    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self.num_qubits:
            raise ValueError(f"qubit {qubit} out of range")

    def _apply_unitary(self, op: Gate) -> None:
        for q in op.qubits:
            self._check_qubit(q)
        matrix = op.matrix()
        k = op.num_qubits
        tensor = matrix.reshape((2,) * (2 * k))
        axes = list(op.qubits)
        # contract the "input" axes of the gate tensor with the state axes
        state = np.tensordot(tensor, self._state, axes=(list(range(k, 2 * k)), axes))
        # tensordot puts the gate's output axes first; move them back in place
        self._state = np.moveaxis(state, list(range(k)), axes)


# ---------------------------------------------------------------------- #
# verification helpers
# ---------------------------------------------------------------------- #
def statevectors_equal(
    a: Iterable[complex], b: Iterable[complex], *, atol: float = 1e-8
) -> bool:
    """Whether two state vectors are equal up to a global phase."""
    va = np.asarray(list(a), dtype=complex).reshape(-1)
    vb = np.asarray(list(b), dtype=complex).reshape(-1)
    if va.shape != vb.shape:
        return False
    inner = np.vdot(va, vb)
    return bool(np.isclose(np.abs(inner), 1.0, atol=atol))


def circuit_unitary(circuit: Circuit) -> np.ndarray:
    """Compute the unitary of a measurement-free circuit by basis-state runs.

    Only practical for small circuits; used by tests to compare routed circuits
    against their logical counterparts.
    """
    dim = 2**circuit.num_qubits
    unitary = np.zeros((dim, dim), dtype=complex)
    for basis in range(dim):
        sim = Simulator(circuit.num_qubits, seed=0)
        vec = np.zeros(dim, dtype=complex)
        vec[basis] = 1.0
        sim.set_statevector(vec)
        result = sim.run(circuit)
        unitary[:, basis] = result.statevector
    return unitary
