"""Commutation-aware dependency DAG over a circuit.

The MECH paper's ``Circuit.py`` "constructs quantum circuits with gates and
measurements, allowing gate commutation to find the earliest execution time of
each gate" (Artifact Appendix A.2).  :class:`DependencyDag` provides exactly
that: a DAG whose nodes are the circuit's operations and whose edges are
*genuine* data dependencies, i.e. an edge is added between two operations that
share a qubit only when they do **not** commute on it.

The DAG powers two things downstream:

* the aggregation pass, which groups mutually-commuting controlled gates that
  share a control (or target) qubit and are simultaneously available,
* earliest-start-time (ASAP) levels used by both compilers' schedulers.

Passing ``commutation_aware=False`` yields the strict program-order DAG that
mainstream transpilers' routing stages use (a gate depends on the previous
gate on each of its wires, commuting or not); the baseline compiler uses that
mode to stay faithful to the paper's Qiskit baseline, while the MECH compiler
uses the commutation-aware mode — exploiting commutation is part of its
contribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator

from .circuit import Circuit
from .commutation import qubit_action
from .gates import Gate

__all__ = ["DagNode", "DependencyDag"]


@dataclass
class DagNode:
    """A single operation inside the dependency DAG."""

    index: int
    op: Gate
    predecessors: set[int] = field(default_factory=set)
    successors: set[int] = field(default_factory=set)

    def __hash__(self) -> int:
        return self.index


class DependencyDag:
    """Commutation-aware dependency DAG of a :class:`~repro.circuits.circuit.Circuit`.

    Construction walks each qubit wire backwards from every new operation and
    adds a dependency on the first earlier operation on that wire with which
    the new operation does not commute.  Operations it commutes with are
    skipped (they may execute in either order), which is what allows e.g. all
    CNOTs sharing a control qubit to sit at the same DAG level.
    """

    def __init__(self, circuit: Circuit, *, commutation_aware: bool = True) -> None:
        self.circuit = circuit
        self.commutation_aware = commutation_aware
        self.nodes: list[DagNode] = [
            DagNode(i, op) for i, op in enumerate(circuit.operations)
        ]
        self._successor_lists: list[list[int]] | None = None
        self._build()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        """Build edges with a per-wire grouping of commuting operations.

        Along each qubit wire, consecutive operations whose local action has
        the same (Z or X) type mutually commute and form a *group*; an
        operation starting a new group depends on **every** member of the
        previous group (not just the nearest one — an operation may commute
        with its immediate predecessor yet conflict with an earlier one).
        This is both correct and linear-time amortised per wire.
        """
        # per wire: (previous group, current group, class of the current group)
        wires: dict[int, tuple[list[DagNode], list[DagNode], str | None]] = {
            q: ([], [], None) for q in range(self.circuit.num_qubits)
        }
        for node in self.nodes:
            for q in node.op.qubits:
                prev_group, cur_group, cur_class = wires[q]
                if self.commutation_aware:
                    cls = qubit_action(node.op, q)
                else:
                    cls = "other"
                if cur_class is not None and cls == cur_class and cls != "other":
                    dependencies = prev_group
                    cur_group.append(node)
                else:
                    dependencies = cur_group
                    prev_group, cur_group, cur_class = cur_group, [node], cls
                for prev in dependencies:
                    node.predecessors.add(prev.index)
                    prev.successors.add(node.index)
                wires[q] = (prev_group, cur_group, cur_class)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[DagNode]:
        return iter(self.nodes)

    def node(self, index: int) -> DagNode:
        return self.nodes[index]

    def front_layer(self) -> list[DagNode]:
        """Nodes with no predecessors (executable immediately)."""
        return [n for n in self.nodes if not n.predecessors]

    def topological_order(self) -> list[DagNode]:
        """Nodes in a topological order (program order is already one)."""
        return list(self.nodes)

    def asap_levels(
        self,
        *,
        meas_latency: float = 2.0,
        one_qubit_weight: float = 0.0,
        two_qubit_weight: float = 1.0,
    ) -> dict[int, float]:
        """Earliest start time of each operation under the paper's cost model.

        The start time of an operation is the maximum finish time over its DAG
        predecessors; its finish time adds the operation's weight (1-qubit
        gates are free, 2-qubit gates cost one step, measurements cost
        ``meas_latency``).  Because the DAG encodes commutations, gates sharing
        only a control qubit receive identical start times, which is the
        "maximum concurrency" the paper's highway protocol then realises.
        """
        finish: dict[int, float] = {}
        start: dict[int, float] = {}
        for node in self.nodes:
            op = node.op
            if op.is_barrier:
                weight = 0.0
            elif op.is_measurement:
                weight = float(meas_latency)
            elif op.num_qubits >= 2:
                weight = float(two_qubit_weight)
            else:
                weight = float(one_qubit_weight)
            t0 = max((finish[p] for p in node.predecessors), default=0.0)
            start[node.index] = t0
            finish[node.index] = t0 + weight
        return start

    def layers(self) -> list[list[DagNode]]:
        """Group nodes into dependency layers (ignoring gate weights).

        A node's layer is ``1 + max(layer of predecessors)``; nodes in the same
        layer are mutually independent (given the commutation relaxation) and
        could in principle run concurrently.
        """
        level: dict[int, int] = {}
        buckets: dict[int, list[DagNode]] = {}
        for node in self.nodes:
            lvl = max((level[p] + 1 for p in node.predecessors), default=0)
            level[node.index] = lvl
            buckets.setdefault(lvl, []).append(node)
        return [buckets[k] for k in sorted(buckets)]

    def successor_lists(self) -> list[list[int]]:
        """Per-node successor lists, cached after the first call.

        The edge sets are frozen once :meth:`_build` returns, so the lists are
        a stable snapshot; crucially they preserve each ``successors`` set's
        own iteration order, which keeps traversal-order-sensitive consumers
        (the SABRE extended-set lookahead) bit-identical to iterating the sets
        directly while being much cheaper to walk in a hot loop.
        """
        if self._successor_lists is None:
            self._successor_lists = [list(node.successors) for node in self.nodes]
        return self._successor_lists

    def in_degrees(self) -> list[int]:
        """Predecessor count per node (a fresh list; callers mutate it)."""
        return [len(node.predecessors) for node in self.nodes]

    def descendants(self, index: int) -> set[int]:
        """All node indices reachable from ``index`` (excluding itself).

        Iterative (no recursion, no memo table): one explicit stack over the
        cached successor lists, so repeated calls allocate nothing beyond the
        result set.
        """
        successors = self.successor_lists()
        seen: set[int] = set()
        stack = [index]
        while stack:
            for succ in successors[stack.pop()]:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen
