"""Small reusable circuit gadgets.

These are the textbook constructions the paper's background section (Section 2)
recalls: the SWAP gate as three CNOTs, the bridge gate performing an effective
CNOT between two qubits connected only through a middle qubit (four CNOTs),
GHZ-state preparation by a CNOT chain, and cluster-state preparation by a
layer of Hadamards followed by CZ gates along the edges of a graph.

Both compilers expand their routing primitives through these gadgets so that
operation counts ("#eff_CNOTs") are consistent between the baseline and MECH.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .circuit import Circuit
from .gates import Gate

__all__ = [
    "swap_to_cnots",
    "bridge_cnot",
    "ghz_chain_circuit",
    "cluster_state_circuit",
    "expand_macros",
]


def swap_to_cnots(a: int, b: int) -> list[Gate]:
    """Decompose ``SWAP(a, b)`` into three CNOTs (paper Fig. 2a).

    A routed circuit expands tens of thousands of SWAPs during metric
    evaluation, so the CNOTs skip re-validation (the SWAP's qubits are
    already validated distinct ints).
    """
    first = Gate.trusted("cx", (a, b))
    return [first, Gate.trusted("cx", (b, a)), first]


def bridge_cnot(control: int, middle: int, target: int) -> list[Gate]:
    """Effective CNOT(control, target) through ``middle`` using four CNOTs.

    This is the bridge gate of paper Fig. 2(b): it implements CNOT between two
    qubits that are not directly coupled, using a shared neighbour, without
    permuting any qubits.
    """
    upper = Gate.trusted("cx", (control, middle))
    lower = Gate.trusted("cx", (middle, target))
    return [upper, lower, upper, lower]


def ghz_chain_circuit(qubits: Sequence[int], num_qubits: int | None = None) -> Circuit:
    """GHZ preparation by a Hadamard and a chain of CNOTs (paper Fig. 1a).

    The chain has depth linear in ``len(qubits)``; the highway machinery
    replaces it with the constant-depth measurement-based preparation, and the
    tests compare the two for correctness.
    """
    qubits = list(qubits)
    if not qubits:
        raise ValueError("GHZ preparation needs at least one qubit")
    size = num_qubits if num_qubits is not None else max(qubits) + 1
    circuit = Circuit(size, name=f"ghz_chain_{len(qubits)}")
    circuit.h(qubits[0])
    for a, b in zip(qubits, qubits[1:], strict=False):
        circuit.cx(a, b)
    return circuit


def cluster_state_circuit(
    edges: Iterable[tuple[int, int]],
    qubits: Sequence[int],
    num_qubits: int | None = None,
) -> Circuit:
    """Cluster-state preparation over graph ``(qubits, edges)`` (paper Fig. 1b).

    All qubits are put in ``|+>`` and a CZ is applied across every edge.  The
    CZ layer can be scheduled greedily in a small constant number of time steps
    for the path/mesh graphs the highway uses (CZs on disjoint pairs commute).
    """
    qubits = list(qubits)
    size = num_qubits if num_qubits is not None else (max(qubits) + 1 if qubits else 1)
    circuit = Circuit(size, name="cluster_state")
    for q in qubits:
        circuit.h(q)
    for a, b in edges:
        circuit.cz(a, b)
    return circuit


def expand_macros(circuit: Circuit) -> Circuit:
    """Expand SWAP and multi-target gates into their CNOT-level realisations.

    The metric accounting in the paper is defined over CNOTs and measurements;
    this helper rewrites a circuit so that every remaining 2-qubit operation is
    a CNOT/CZ/CP-level gate (SWAP becomes three CNOTs, ``mcx``/``mcp`` become
    their per-target components).
    """
    out = Circuit(circuit.num_qubits, circuit.name)
    # every expanded gate acts on qubits of an already validated operation,
    # so the expansion appends straight to the op list (routed circuits
    # expand hundreds of thousands of operations during metric evaluation)
    ops_out = out.operations
    for op in circuit:
        if op.name == "swap":
            ops_out.extend(swap_to_cnots(op.qubits[0], op.qubits[1]))
        elif op.is_multi_target:
            ops_out.extend(op.components())
        else:
            ops_out.append(op)
    return out
