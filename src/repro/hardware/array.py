"""Chiplet arrays: assembling chiplets into a multi-chip module (MCM).

A :class:`ChipletArray` places ``rows x cols`` copies of a single-chiplet
structure (see :mod:`repro.hardware.chiplet`) on a global grid and adds
cross-chip links between facing boundary qubits of neighbouring chiplets.
The number of cross-chip links per chiplet edge is configurable, which is how
the paper's sparsity study (Fig. 14: 7/7, 3/7 and 1/7 of the possible links)
is reproduced.

The result is exposed both as a :class:`~repro.hardware.topology.Topology`
(what the compilers consume) and through coordinate lookups that the highway
layout generator uses to place highway qubits along chiplet mid-lines and
boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from .chiplet import ChipletStructure, build_chiplet
from .topology import Topology

__all__ = ["ChipletArray"]

Coordinate = tuple[int, int]


@dataclass
class ChipletArray:
    """A ``rows x cols`` array of identical chiplets joined by cross-chip links.

    Parameters
    ----------
    structure:
        Coupling structure name: ``"square"``, ``"hexagon"``, ``"heavy_square"``
        or ``"heavy_hexagon"``.
    chiplet_width:
        Footprint width ``w`` of each chiplet (Table 1's "chiplet size w x w").
    rows, cols:
        Shape of the chiplet array.
    cross_links_per_edge:
        How many cross-chip links to place on each facing chiplet boundary.
        ``None`` keeps every possible link (the paper's dense 7/7 setting);
        smaller values pick evenly spaced links (3/7, 1/7 ...).
    """

    structure: str
    chiplet_width: int
    rows: int
    cols: int
    cross_links_per_edge: int | None = None

    chiplet: ChipletStructure = field(init=False, repr=False)
    _coord_to_qubit: dict[Coordinate, int] = field(init=False, repr=False)
    _qubit_to_coord: dict[int, Coordinate] = field(init=False, repr=False)
    _topology: Topology = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("chiplet array must have at least one chiplet")
        if self.cross_links_per_edge is not None and self.cross_links_per_edge < 1:
            raise ValueError("cross_links_per_edge must be at least 1 (or None for all)")
        self.chiplet = build_chiplet(self.structure, self.chiplet_width)
        self._build()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        width = self.chiplet_width
        graph = nx.Graph()
        coord_to_qubit: dict[Coordinate, int] = {}

        # place qubits chiplet by chiplet, row-major over global coordinates
        global_coords: list[tuple[Coordinate, Coordinate]] = []
        for ci in range(self.rows):
            for cj in range(self.cols):
                for (r, c) in sorted(self.chiplet.nodes):
                    global_coords.append(((ci * width + r, cj * width + c), (ci, cj)))
        global_coords.sort(key=lambda item: item[0])
        for qubit, (coord, chiplet_idx) in enumerate(global_coords):
            coord_to_qubit[coord] = qubit
            graph.add_node(qubit, pos=coord, chiplet=chiplet_idx)

        # on-chip couplers
        for ci in range(self.rows):
            for cj in range(self.cols):
                for (a, b) in self.chiplet.edges:
                    ga = (ci * width + a[0], cj * width + a[1])
                    gb = (ci * width + b[0], cj * width + b[1])
                    graph.add_edge(coord_to_qubit[ga], coord_to_qubit[gb], cross_chip=False)

        # cross-chip couplers
        for (ga, gb) in self._cross_chip_pairs():
            graph.add_edge(coord_to_qubit[ga], coord_to_qubit[gb], cross_chip=True)

        self._coord_to_qubit = coord_to_qubit
        self._qubit_to_coord = {q: coord for coord, q in coord_to_qubit.items()}
        name = (
            f"{self.structure}-{width}x{width}-{self.rows}x{self.cols}"
            + ("" if self.cross_links_per_edge is None else f"-x{self.cross_links_per_edge}")
        )
        self._topology = Topology(graph, name=name)

    def _cross_chip_pairs(self) -> list[tuple[Coordinate, Coordinate]]:
        """Global coordinate pairs joined by cross-chip links."""
        width = self.chiplet_width
        pairs: list[tuple[Coordinate, Coordinate]] = []

        # vertical neighbours: bottom boundary of (ci, cj) to top boundary of (ci+1, cj)
        bottom = {c for (r, c) in self.chiplet.boundary_nodes("bottom")}
        top = {c for (r, c) in self.chiplet.boundary_nodes("top")}
        vertical_cols = sorted(bottom & top)
        vertical_cols = _select_evenly(vertical_cols, self.cross_links_per_edge)
        for ci in range(self.rows - 1):
            for cj in range(self.cols):
                for c in vertical_cols:
                    upper = (ci * width + width - 1, cj * width + c)
                    lower = ((ci + 1) * width, cj * width + c)
                    pairs.append((upper, lower))

        # horizontal neighbours: right boundary of (ci, cj) to left boundary of (ci, cj+1)
        right = {r for (r, c) in self.chiplet.boundary_nodes("right")}
        left = {r for (r, c) in self.chiplet.boundary_nodes("left")}
        horizontal_rows = sorted(right & left)
        horizontal_rows = _select_evenly(horizontal_rows, self.cross_links_per_edge)
        for ci in range(self.rows):
            for cj in range(self.cols - 1):
                for r in horizontal_rows:
                    left_q = (ci * width + r, cj * width + width - 1)
                    right_q = (ci * width + r, (cj + 1) * width)
                    pairs.append((left_q, right_q))
        return pairs

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def topology(self) -> Topology:
        """The assembled device coupling graph."""
        return self._topology

    @property
    def num_qubits(self) -> int:
        return self._topology.num_qubits

    @property
    def num_chiplets(self) -> int:
        return self.rows * self.cols

    def qubit_at(self, coord: Coordinate) -> int | None:
        """Qubit index at a global ``(row, col)`` coordinate, or None if absent."""
        return self._coord_to_qubit.get(tuple(coord))

    def coordinate_of(self, qubit: int) -> Coordinate:
        """Global ``(row, col)`` coordinate of ``qubit``."""
        return self._qubit_to_coord[qubit]

    def chiplet_of(self, qubit: int) -> Coordinate:
        """Chiplet index ``(ci, cj)`` containing ``qubit``."""
        return self._topology.chiplet_of(qubit)  # type: ignore[return-value]

    def qubits_in_chiplet(self, chiplet: Coordinate) -> list[int]:
        return self._topology.qubits_in_chiplet(chiplet)

    @property
    def global_rows(self) -> int:
        """Number of rows of the global coordinate grid."""
        return self.rows * self.chiplet_width

    @property
    def global_cols(self) -> int:
        """Number of columns of the global coordinate grid."""
        return self.cols * self.chiplet_width

    def max_cross_links_per_edge(self) -> int:
        """The number of cross-chip links per chiplet edge in the dense setting."""
        bottom = {c for (r, c) in self.chiplet.boundary_nodes("bottom")}
        top = {c for (r, c) in self.chiplet.boundary_nodes("top")}
        return len(bottom & top)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChipletArray(structure={self.structure!r}, chiplet={self.chiplet_width}x"
            f"{self.chiplet_width}, array={self.rows}x{self.cols}, "
            f"qubits={self.num_qubits})"
        )


def _select_evenly(candidates: list[int], count: int | None) -> list[int]:
    """Pick ``count`` centred, evenly spaced entries from ``candidates``.

    Centred spacing matters: with a single link per edge it lands on the
    *middle* boundary qubit, which is where the highway mesh crosses the
    chiplet boundary, so the highway stays routable even at sparsity 1/7.
    """
    if count is None or count >= len(candidates):
        return list(candidates)
    if not candidates:
        return []
    n = len(candidates)
    chosen = sorted({int(round((i + 0.5) * n / count - 0.5)) for i in range(count)})
    chosen = [min(max(i, 0), n - 1) for i in chosen]
    return [candidates[i] for i in sorted(set(chosen))]
