"""Chiplet hardware substrate: coupling structures, arrays, topology, noise."""

from .array import ChipletArray
from .chiplet import (
    COUPLING_STRUCTURES,
    ChipletStructure,
    build_chiplet,
    heavy_hexagon_chiplet,
    heavy_square_chiplet,
    hexagon_chiplet,
    square_chiplet,
)
from .noise import DEFAULT_NOISE, NoiseModel
from .topology import Topology, TopologyError

__all__ = [
    "ChipletArray",
    "ChipletStructure",
    "COUPLING_STRUCTURES",
    "build_chiplet",
    "square_chiplet",
    "hexagon_chiplet",
    "heavy_square_chiplet",
    "heavy_hexagon_chiplet",
    "Topology",
    "TopologyError",
    "NoiseModel",
    "DEFAULT_NOISE",
]
