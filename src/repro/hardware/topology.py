"""Coupling-graph model of a (multi-chip) superconducting device.

A :class:`Topology` wraps a ``networkx`` graph whose nodes are physical qubits
and whose edges are 2-qubit couplers.  Each node carries its grid coordinate
and the chiplet it belongs to; each edge is labelled on-chip or cross-chip.
The class pre-computes all-pairs shortest-path distances (hop counts, and a
weighted variant where cross-chip edges are more expensive) because both the
baseline SABRE-style router and the MECH local router consult distances in
their inner loops.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import networkx as nx
import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

__all__ = ["Topology", "TopologyError"]

Coordinate = tuple[int, int]


class TopologyError(ValueError):
    """Raised for invalid topology construction or queries."""


class Topology:
    """A device coupling graph with on-chip / cross-chip edge labels.

    Parameters
    ----------
    graph:
        Undirected graph over integer qubit indices ``0..n-1``.  Edges may have
        a boolean ``cross_chip`` attribute (default ``False``); nodes may have
        ``pos`` (a ``(row, col)`` coordinate) and ``chiplet`` (a ``(ci, cj)``
        chiplet index) attributes.
    name:
        Human-readable description, e.g. ``"square-7x7-3x3"``.
    """

    def __init__(self, graph: nx.Graph, name: str = "device") -> None:
        if graph.number_of_nodes() == 0:
            raise TopologyError("topology must contain at least one qubit")
        nodes = sorted(graph.nodes())
        if nodes != list(range(len(nodes))):
            raise TopologyError("qubit indices must be 0..n-1 without gaps")
        # The graph is immutable once wrapped (derived topologies go through
        # subtopology()/copy(), which build fresh Topology objects), so query
        # results are cached as tuples with no invalidation protocol at all;
        # freezing makes a violating add_edge/add_node fail loudly instead of
        # silently invalidating the caches.
        self.graph = nx.freeze(graph)
        self.name = name
        self._dist_cache: dict[float, np.ndarray] = {}
        self._qubits: tuple[int, ...] | None = None
        self._edges: tuple[tuple[int, int], ...] | None = None
        self._cross_chip_edges: tuple[tuple[int, int], ...] | None = None
        self._on_chip_edges: tuple[tuple[int, int], ...] | None = None
        self._neighbors: dict[int, tuple[int, ...]] = {}
        self._adjacency: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    def qubits(self) -> tuple[int, ...]:
        if self._qubits is None:
            self._qubits = tuple(sorted(self.graph.nodes()))
        return self._qubits

    def edges(self) -> tuple[tuple[int, int], ...]:
        if self._edges is None:
            self._edges = tuple(
                (min(a, b), max(a, b)) for a, b in self.graph.edges()
            )
        return self._edges

    def neighbors(self, qubit: int) -> tuple[int, ...]:
        cached = self._neighbors.get(qubit)
        if cached is None:
            cached = tuple(sorted(self.graph.neighbors(qubit)))
            self._neighbors[qubit] = cached
        return cached

    def degree(self, qubit: int) -> int:
        return self.graph.degree(qubit)

    def is_coupled(self, a: int, b: int) -> bool:
        return self.graph.has_edge(a, b)

    def adjacency_matrix(self) -> np.ndarray:
        """Dense boolean coupling matrix (``adj[a, b]`` iff a and b are coupled).

        Routers use this for O(1) numpy coupling checks in their inner loops;
        like every other query result it is cached forever (the graph never
        mutates).
        """
        if self._adjacency is None:
            n = self.num_qubits
            adjacency = np.zeros((n, n), dtype=bool)
            for a, b in self.graph.edges():
                adjacency[a, b] = True
                adjacency[b, a] = True
            self._adjacency = adjacency
        return self._adjacency

    def is_cross_chip(self, a: int, b: int) -> bool:
        """Whether the coupler between ``a`` and ``b`` is a cross-chip link."""
        if not self.graph.has_edge(a, b):
            raise TopologyError(f"qubits {a} and {b} are not coupled")
        return bool(self.graph.edges[a, b].get("cross_chip", False))

    def cross_chip_edges(self) -> tuple[tuple[int, int], ...]:
        if self._cross_chip_edges is None:
            self._cross_chip_edges = tuple(
                (min(a, b), max(a, b))
                for a, b, data in self.graph.edges(data=True)
                if data.get("cross_chip", False)
            )
        return self._cross_chip_edges

    def on_chip_edges(self) -> tuple[tuple[int, int], ...]:
        if self._on_chip_edges is None:
            self._on_chip_edges = tuple(
                (min(a, b), max(a, b))
                for a, b, data in self.graph.edges(data=True)
                if not data.get("cross_chip", False)
            )
        return self._on_chip_edges

    def position(self, qubit: int) -> Coordinate | None:
        """Grid coordinate of ``qubit``, if known."""
        return self.graph.nodes[qubit].get("pos")

    def chiplet_of(self, qubit: int) -> Coordinate | None:
        """Chiplet index ``(ci, cj)`` of ``qubit``, if known."""
        return self.graph.nodes[qubit].get("chiplet")

    def chiplets(self) -> list[Coordinate]:
        """Sorted list of distinct chiplet indices present in the device."""
        found = {
            data.get("chiplet")
            for _, data in self.graph.nodes(data=True)
            if data.get("chiplet") is not None
        }
        return sorted(found)

    def qubits_in_chiplet(self, chiplet: Coordinate) -> list[int]:
        return sorted(
            q for q, data in self.graph.nodes(data=True) if data.get("chiplet") == chiplet
        )

    def is_connected(self) -> bool:
        return nx.is_connected(self.graph)

    # ------------------------------------------------------------------ #
    # distances and paths
    # ------------------------------------------------------------------ #
    def distance_matrix(self, *, cross_chip_weight: float = 1.0) -> np.ndarray:
        """All-pairs shortest-path distances.

        ``cross_chip_weight`` > 1 penalises cross-chip links, which the
        baseline router uses to mildly prefer on-chip routing when the error
        model makes cross-chip CNOTs more expensive.
        """
        key = float(cross_chip_weight)
        if key not in self._dist_cache:
            self._dist_cache[key] = self._compute_distances(key)
        return self._dist_cache[key]

    def distance(self, a: int, b: int, *, cross_chip_weight: float = 1.0) -> float:
        return float(self.distance_matrix(cross_chip_weight=cross_chip_weight)[a, b])

    def shortest_path(
        self, a: int, b: int, *, cross_chip_weight: float = 1.0
    ) -> list[int]:
        """One shortest path from ``a`` to ``b`` (inclusive of both endpoints)."""
        if cross_chip_weight == 1.0:
            return nx.shortest_path(self.graph, a, b)

        def weight(u: int, v: int, data: dict) -> float:
            return cross_chip_weight if data.get("cross_chip", False) else 1.0

        return nx.shortest_path(self.graph, a, b, weight=weight)

    def _compute_distances(self, cross_chip_weight: float) -> np.ndarray:
        n = self.num_qubits
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        for a, b, data in self.graph.edges(data=True):
            w = cross_chip_weight if data.get("cross_chip", False) else 1.0
            rows.extend((a, b))
            cols.extend((b, a))
            vals.extend((w, w))
        matrix = csr_matrix((vals, (rows, cols)), shape=(n, n))
        return dijkstra(matrix, directed=False)

    # ------------------------------------------------------------------ #
    # derived topologies
    # ------------------------------------------------------------------ #
    def subtopology(self, qubits: Iterable[int], name: str | None = None) -> "Topology":
        """Induced subgraph over ``qubits``, relabelled to ``0..k-1``.

        Returns the new topology; use :meth:`sub_index_map` semantics via the
        returned object's node attribute ``original`` to map back.
        """
        keep = sorted(set(qubits))
        mapping = {q: i for i, q in enumerate(keep)}
        sub = nx.Graph()
        for q in keep:
            attrs = dict(self.graph.nodes[q])
            attrs["original"] = q
            sub.add_node(mapping[q], **attrs)
        for a, b, data in self.graph.subgraph(keep).edges(data=True):
            sub.add_edge(mapping[a], mapping[b], **data)
        return Topology(sub, name or f"{self.name}-sub")

    def copy(self) -> "Topology":
        # nx.Graph.copy() of a frozen graph yields a fresh mutable graph,
        # which the new Topology freezes again
        return Topology(nx.Graph(self.graph), self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology(name={self.name!r}, qubits={self.num_qubits}, "
            f"edges={self.num_edges}, cross_chip={len(self.cross_chip_edges())})"
        )


def _validate_edge_list(edges: Sequence[tuple[int, int]]) -> None:
    for a, b in edges:
        if a == b:
            raise TopologyError(f"self-loop on qubit {a}")
