"""Single-chiplet coupling structures (paper Fig. 11).

The paper evaluates four chiplet coupling structures: *square*, *hexagon*,
*heavy-square* and *heavy-hexagon*.  Each structure is described here as a
function of the chiplet's footprint width ``w`` (the "chiplet size ``w x w``"
of Table 1) returning

* the set of local grid coordinates ``(row, col)`` that host a qubit, and
* the set of on-chip couplers between those coordinates.

The heavy variants follow IBM's heavy-square / heavy-hexagon construction in
which some lattice sites are removed so the remaining connectivity has lower
degree; this is why, e.g., an 8x8 heavy-square chiplet has 48 qubits rather
than 64 (matching the paper's Table 1 qubit totals).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

__all__ = [
    "ChipletStructure",
    "COUPLING_STRUCTURES",
    "build_chiplet",
    "square_chiplet",
    "hexagon_chiplet",
    "heavy_square_chiplet",
    "heavy_hexagon_chiplet",
]

Coordinate = tuple[int, int]
Edge = tuple[Coordinate, Coordinate]


@dataclass(frozen=True)
class ChipletStructure:
    """Nodes and on-chip edges of a single chiplet on a ``width x width`` footprint."""

    name: str
    width: int
    nodes: frozenset[Coordinate]
    edges: frozenset[Edge]

    @property
    def num_qubits(self) -> int:
        return len(self.nodes)

    def has_node(self, coord: Coordinate) -> bool:
        return coord in self.nodes

    def boundary_nodes(self, side: str) -> list[Coordinate]:
        """Nodes on one side of the footprint (``"top"/"bottom"/"left"/"right"``).

        Cross-chip links attach to these nodes; for the heavy structures some
        boundary sites are absent, so fewer cross-chip links are possible.
        """
        last = self.width - 1
        if side == "top":
            selected = [c for c in self.nodes if c[0] == 0]
        elif side == "bottom":
            selected = [c for c in self.nodes if c[0] == last]
        elif side == "left":
            selected = [c for c in self.nodes if c[1] == 0]
        elif side == "right":
            selected = [c for c in self.nodes if c[1] == last]
        else:
            raise ValueError(f"unknown side {side!r}")
        return sorted(selected)


def _orthogonal_edges(nodes: set[Coordinate]) -> set[Edge]:
    """All nearest-neighbour (grid) edges between present nodes."""
    edges: set[Edge] = set()
    for r, c in nodes:
        for dr, dc in ((0, 1), (1, 0)):
            other = (r + dr, c + dc)
            if other in nodes:
                edges.add(((r, c), other))
    return edges


def square_chiplet(width: int) -> ChipletStructure:
    """Full ``width x width`` grid with nearest-neighbour coupling."""
    _check_width(width)
    nodes = {(r, c) for r in range(width) for c in range(width)}
    return ChipletStructure("square", width, frozenset(nodes), frozenset(_orthogonal_edges(nodes)))


def hexagon_chiplet(width: int) -> ChipletStructure:
    """Hexagonal (brick-wall) lattice on a full ``width x width`` grid.

    All sites host qubits; every horizontal coupler is present but vertical
    couplers only appear on alternating columns, producing the degree-3
    brick-wall rendering of a hexagonal lattice.
    """
    _check_width(width)
    nodes = {(r, c) for r in range(width) for c in range(width)}
    edges: set[Edge] = set()
    for r in range(width):
        for c in range(width - 1):
            edges.add(((r, c), (r, c + 1)))
    for r in range(width - 1):
        for c in range(width):
            if (r + c) % 2 == 0:
                edges.add(((r, c), (r + 1, c)))
    return ChipletStructure("hexagon", width, frozenset(nodes), frozenset(edges))


def heavy_square_chiplet(width: int) -> ChipletStructure:
    """Heavy-square lattice: the square grid with every (odd, odd) site removed.

    The remaining (even, even) sites act as lattice vertices and the (even,
    odd) / (odd, even) sites as coupler qubits sitting on lattice edges, which
    reproduces the degree pattern of IBM's heavy-square layouts.
    """
    _check_width(width)
    nodes = {
        (r, c)
        for r in range(width)
        for c in range(width)
        if not (r % 2 == 1 and c % 2 == 1)
    }
    return ChipletStructure(
        "heavy_square", width, frozenset(nodes), frozenset(_orthogonal_edges(nodes))
    )


def heavy_hexagon_chiplet(width: int) -> ChipletStructure:
    """Heavy-hexagon lattice in the style of IBM's heavy-hex devices.

    Even rows are fully populated; odd rows keep only sparse "bridge" qubits
    every four columns, with the offset alternating between consecutive odd
    rows.  Bridge qubits couple vertically to the rows above and below; even
    rows couple horizontally.
    """
    _check_width(width)
    nodes: set[Coordinate] = set()
    for r in range(width):
        if r % 2 == 0:
            nodes.update((r, c) for c in range(width))
        else:
            offset = 0 if (r // 2) % 2 == 0 else 2
            nodes.update((r, c) for c in range(width) if c % 4 == offset)
    edges: set[Edge] = set()
    for r in range(0, width, 2):
        for c in range(width - 1):
            if (r, c) in nodes and (r, c + 1) in nodes:
                edges.add(((r, c), (r, c + 1)))
    for r in range(1, width, 2):
        for c in range(width):
            if (r, c) not in nodes:
                continue
            if (r - 1, c) in nodes:
                edges.add(((r - 1, c), (r, c)))
            if (r + 1, c) in nodes:
                edges.add(((r, c), (r + 1, c)))
    return ChipletStructure("heavy_hexagon", width, frozenset(nodes), frozenset(edges))


#: Registry mapping structure names to their builders.
COUPLING_STRUCTURES: dict[str, Callable[[int], ChipletStructure]] = {
    "square": square_chiplet,
    "hexagon": hexagon_chiplet,
    "heavy_square": heavy_square_chiplet,
    "heavy_hexagon": heavy_hexagon_chiplet,
}


def build_chiplet(structure: str, width: int) -> ChipletStructure:
    """Build a single chiplet of the named coupling ``structure``."""
    try:
        builder = COUPLING_STRUCTURES[structure]
    except KeyError as exc:
        raise ValueError(
            f"unknown coupling structure {structure!r}; "
            f"choose from {sorted(COUPLING_STRUCTURES)}"
        ) from exc
    return builder(width)


def _check_width(width: int) -> None:
    if width < 2:
        raise ValueError("chiplet width must be at least 2")
