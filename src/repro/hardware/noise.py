"""Error/latency model used by the paper's metrics (Section 7.1).

Only *ratios* between operation error rates enter the paper's effective-CNOT
metric, and only the measurement latency (in units of a 2-qubit gate time)
enters the depth metric, so the model is a small dataclass of those ratios.

Defaults follow the paper: measurements count as depth 2 (IBM calibration),
``p_cross / p_on = 7.4`` (IBM interference-coupler CNOT fidelity vs. flip-chip
bond fidelity) and ``p_meas / p_on = 2.2`` (transmon readout fidelity).  The
sensitivity analysis (Fig. 13) sweeps each of these.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["NoiseModel", "DEFAULT_NOISE"]


@dataclass(frozen=True)
class NoiseModel:
    """Relative error rates and latencies of the error-prone operations.

    Attributes
    ----------
    cross_on_ratio:
        ``p_cross / p_on`` — error of a cross-chip CNOT relative to an on-chip
        CNOT.
    meas_on_ratio:
        ``p_meas / p_on`` — error of a measurement relative to an on-chip CNOT.
    meas_latency:
        Duration of a measurement in units of a 2-qubit gate duration; it is
        the weight measurements receive in the depth metric.
    on_chip_error:
        Absolute physical error rate of an on-chip CNOT.  Only needed when an
        absolute program error estimate is requested; the relative metrics do
        not use it.
    """

    cross_on_ratio: float = 7.4
    meas_on_ratio: float = 2.2
    meas_latency: float = 2.0
    on_chip_error: float = 1e-3

    def __post_init__(self) -> None:
        if self.cross_on_ratio <= 0 or self.meas_on_ratio <= 0:
            raise ValueError("error-rate ratios must be positive")
        if self.meas_latency < 0:
            raise ValueError("measurement latency must be non-negative")
        if not 0 < self.on_chip_error < 1:
            raise ValueError("on_chip_error must be a probability in (0, 1)")

    @property
    def cross_chip_error(self) -> float:
        """Absolute error rate of a cross-chip CNOT."""
        return self.on_chip_error * self.cross_on_ratio

    @property
    def measurement_error(self) -> float:
        """Absolute error rate of a measurement."""
        return self.on_chip_error * self.meas_on_ratio

    def with_ratios(
        self,
        *,
        cross_on_ratio: float | None = None,
        meas_on_ratio: float | None = None,
        meas_latency: float | None = None,
    ) -> "NoiseModel":
        """Return a copy with some ratios replaced (used by the sensitivity sweeps)."""
        return replace(
            self,
            cross_on_ratio=self.cross_on_ratio if cross_on_ratio is None else cross_on_ratio,
            meas_on_ratio=self.meas_on_ratio if meas_on_ratio is None else meas_on_ratio,
            meas_latency=self.meas_latency if meas_latency is None else meas_latency,
        )

    def effective_cnots(
        self, on_chip_cnots: int, cross_chip_cnots: int, measurements: int
    ) -> float:
        """The paper's ``#eff_CNOTs`` combination of operation counts."""
        return (
            float(on_chip_cnots)
            + self.cross_on_ratio * float(cross_chip_cnots)
            + self.meas_on_ratio * float(measurements)
        )

    def success_probability(
        self, on_chip_cnots: int, cross_chip_cnots: int, measurements: int
    ) -> float:
        """Estimated program success probability under independent errors."""
        return (
            (1.0 - self.on_chip_error) ** on_chip_cnots
            * (1.0 - self.cross_chip_error) ** cross_chip_cnots
            * (1.0 - self.measurement_error) ** measurements
        )


#: The paper's default calibration-derived model.
DEFAULT_NOISE = NoiseModel()
