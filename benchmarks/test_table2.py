"""Benchmark regenerating Table 2 (baseline vs MECH on 3x3 square arrays)."""

from conftest import run_once

from repro.experiments import format_table2, run_table2

#: Chiplet sizes per scale tier; the paper sweeps 6x6 .. 9x9.
_SIZES = {"small": (4,), "medium": (5, 6), "paper": (6, 7, 8, 9)}
#: Smaller tiers use a smaller array so the baseline stays tractable.
_SHAPE = {"small": (2, 2), "medium": (3, 3), "paper": (3, 3)}


def test_table2(benchmark, repro_scale):
    """Regenerate the paper's main results table and check the headline claim."""

    def regenerate():
        return run_table2(
            scale=repro_scale,
            chiplet_sizes=_SIZES[repro_scale],
            array_shape=_SHAPE[repro_scale],
        )

    records = run_once(benchmark, regenerate)
    print()
    print(format_table2(records))

    # MECH reduces the error-weighted operation count on every benchmark, and
    # the depth collapse on BV (the paper's >90% rows) shows up at every scale.
    for record in records:
        assert record.eff_cnots_improvement > 0.0, (
            f"{record.benchmark}-{record.num_data_qubits}: MECH eff_CNOTs did not improve"
        )
    for record in records:
        if record.benchmark == "BV":
            assert record.depth_improvement > 0.5
    # the full depth advantage on QFT/QAOA/VQE needs larger devices than the
    # "small" tier (see EXPERIMENTS.md); assert it only at medium/paper scale
    if repro_scale != "small":
        for record in records:
            assert record.depth_improvement > 0.0
