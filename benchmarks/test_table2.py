"""Benchmark regenerating Table 2 (baseline vs MECH on square arrays)."""

from conftest import run_once

from repro.experiments import format_table2, run_table2


def test_table2(benchmark, repro_scale, engine_opts, checkpoint_for):
    """Regenerate the paper's main results table and check the headline claim."""
    records = run_once(
        benchmark, run_table2, scale=repro_scale, checkpoint=checkpoint_for("table2"), **engine_opts
    )
    print()
    print(format_table2(records))

    # MECH reduces the error-weighted operation count on every benchmark, and
    # the depth collapse on BV (the paper's >90% rows) shows up at every scale.
    for record in records:
        assert record.eff_cnots_improvement > 0.0, (
            f"{record.benchmark}-{record.num_data_qubits}: MECH eff_CNOTs did not improve"
        )
    for record in records:
        if record.benchmark == "BV":
            assert record.depth_improvement > 0.5
    # the full depth advantage on QFT/QAOA/VQE needs larger devices than the
    # "small" tier (see EXPERIMENTS.md); assert it only at medium/paper scale
    if repro_scale != "small":
        for record in records:
            assert record.depth_improvement > 0.0
