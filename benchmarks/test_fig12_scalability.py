"""Benchmark regenerating Fig. 12 (improvement vs number of chiplets)."""

from conftest import run_once

from repro.experiments import format_fig12, improvement_series, run_fig12


def test_fig12_scalability(benchmark, repro_scale, engine_opts, checkpoint_for):
    """Improvements should not shrink as the chiplet array grows."""
    records = run_once(
        benchmark, run_fig12, scale=repro_scale, checkpoint=checkpoint_for("fig12"), **engine_opts
    )
    print()
    print(format_fig12(records))

    series = improvement_series(records)
    for name, points in series.items():
        depth_first = points[0][1]
        depth_last = points[-1][1]
        eff_first = points[0][2]
        eff_last = points[-1][2]
        # the paper's scalability trend: larger arrays favour MECH (allow a
        # small tolerance for noise at the reduced default scale)
        assert depth_last >= depth_first - 0.15, f"{name}: depth trend reversed"
        assert eff_last >= eff_first - 0.15, f"{name}: eff_CNOT trend reversed"
