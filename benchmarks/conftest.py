"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures through the
orchestration engine at a reduced ("small") scale by default so the whole
suite finishes in minutes; pass ``--repro-scale medium`` (or ``paper``) to run
closer to the paper's settings (the paper itself reports hundreds of CPU hours
for the full sweep).  The scale tiers are the engine's shared presets
(:data:`repro.experiments.engine.SCALE_TIERS`) — each experiment module maps
them onto its own device sweep, so the benchmarks carry no per-benchmark
ad-hoc settings.

Two more knobs plumb straight into the engine:

* ``--repro-jobs N`` fans each regeneration out over N worker processes;
* ``--repro-cache-dir PATH`` enables the on-disk result cache.  Off by
  default: a warm cache would make ``pytest-benchmark`` time cache lookups
  instead of compilations.

Each benchmark prints the regenerated table so the numbers land in the
benchmark log, and reports the end-to-end wall time of one full regeneration
through ``pytest-benchmark`` (a single round — compilation is deterministic
and slow, so repeated rounds would only waste time).
"""

import pytest

from repro.experiments.engine import SCALE_TIERS


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default="small",
        choices=list(SCALE_TIERS),
        help="Engine scale preset for the reproduction benchmarks.",
    )
    parser.addoption(
        "--repro-jobs",
        action="store",
        type=int,
        default=1,
        help="Worker processes per experiment regeneration (engine --jobs).",
    )
    parser.addoption(
        "--repro-cache-dir",
        action="store",
        default=None,
        help="Optional on-disk result cache shared across benchmark runs.",
    )


@pytest.fixture(scope="session")
def repro_scale(request):
    return request.config.getoption("--repro-scale")


@pytest.fixture(scope="session")
def engine_opts(request):
    """Keyword arguments forwarded to every ``run_*`` experiment call."""
    return {
        "workers": request.config.getoption("--repro-jobs"),
        "cache": request.config.getoption("--repro-cache-dir"),
    }


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
