"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures at a reduced
("small") scale by default so the whole suite finishes in minutes; pass
``--repro-scale medium`` (or ``paper``) to run closer to the paper's settings
(the paper itself reports hundreds of CPU hours for the full sweep).  Each
benchmark prints the regenerated table so the numbers land in the benchmark
log, and reports the end-to-end wall time of one full regeneration through
``pytest-benchmark`` (a single round — compilation is deterministic and slow,
so repeated rounds would only waste time).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default="small",
        choices=["small", "medium", "paper"],
        help="Experiment scale tier for the reproduction benchmarks.",
    )


@pytest.fixture(scope="session")
def repro_scale(request):
    return request.config.getoption("--repro-scale")


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
