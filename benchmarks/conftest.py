"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures through the
orchestration engine at a reduced ("small") scale by default so the whole
suite finishes in minutes; pass ``--repro-scale medium`` (or ``paper``) to run
closer to the paper's settings (the paper itself reports hundreds of CPU hours
for the full sweep).  The scale tiers are the engine's shared presets
(:data:`repro.experiments.engine.SCALE_TIERS`) — each experiment module maps
them onto its own device sweep, so the benchmarks carry no per-benchmark
ad-hoc settings.

More knobs plumb straight into the engine:

* ``--repro-jobs N`` fans each regeneration out over N worker processes;
* ``--repro-cache-dir PATH`` enables the on-disk result cache.  Off by
  default: a warm cache would make ``pytest-benchmark`` time cache lookups
  instead of compilations;
* ``--repro-timeout SECONDS`` / ``--repro-retries N`` / ``--repro-on-error
  {raise,skip,record}`` build the engine's :class:`JobPolicy` — useful at
  ``--repro-scale paper`` where one straggler baseline compilation would
  otherwise block a whole overnight benchmark run.  The default policy
  (``raise``) matches the historic fail-fast behaviour;
* ``--repro-checkpoint-dir PATH`` writes a resumable
  ``<experiment>.checkpoint.json`` per benchmark.  An interrupted overnight
  run (given ``--repro-cache-dir``) can then be finished with
  ``repro resume PATH/<experiment>.checkpoint.json`` — only the jobs that
  never completed execute;
* ``--repro-compilers a,b,c`` compares N registered compiler backends
  (reference first) instead of the default baseline-vs-MECH pair, exactly
  like ``repro run --compilers``.

Each benchmark prints the regenerated table so the numbers land in the
benchmark log, and reports the end-to-end wall time of one full regeneration
through ``pytest-benchmark`` (a single round — compilation is deterministic
and slow, so repeated rounds would only waste time).
"""

from pathlib import Path

import pytest

from repro.experiments.engine import SCALE_TIERS, JobPolicy


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default="small",
        choices=list(SCALE_TIERS),
        help="Engine scale preset for the reproduction benchmarks.",
    )
    parser.addoption(
        "--repro-jobs",
        action="store",
        type=int,
        default=1,
        help="Worker processes per experiment regeneration (engine --jobs).",
    )
    parser.addoption(
        "--repro-cache-dir",
        action="store",
        default=None,
        help="Optional on-disk result cache shared across benchmark runs.",
    )
    parser.addoption(
        "--repro-timeout",
        action="store",
        type=float,
        default=None,
        help="Per-job wall-clock timeout in seconds (engine --timeout).",
    )
    parser.addoption(
        "--repro-retries",
        action="store",
        type=int,
        default=0,
        help="Extra attempts for a failed job (engine --retries).",
    )
    parser.addoption(
        "--repro-on-error",
        action="store",
        default="raise",
        choices=list(JobPolicy.ON_ERROR_CHOICES),
        help="Failed-job disposition (engine --on-error; default raise).",
    )
    parser.addoption(
        "--repro-checkpoint-dir",
        action="store",
        default=None,
        help="Directory for resumable <experiment>.checkpoint.json files"
        " (resume an interrupted benchmark with `repro resume`).",
    )
    parser.addoption(
        "--repro-compilers",
        action="store",
        default=None,
        help="Comma-separated registered compiler backends to compare"
        " (reference first; engine --compilers, default baseline,mech;"
        " see `repro compilers`).",
    )


@pytest.fixture(scope="session")
def repro_scale(request):
    return request.config.getoption("--repro-scale")


@pytest.fixture(scope="session")
def engine_opts(request):
    """Keyword arguments forwarded to every ``run_*`` experiment call."""
    opts = {
        "workers": request.config.getoption("--repro-jobs"),
        "cache": request.config.getoption("--repro-cache-dir"),
    }
    timeout = request.config.getoption("--repro-timeout")
    retries = request.config.getoption("--repro-retries")
    on_error = request.config.getoption("--repro-on-error")
    if timeout is not None or retries or on_error != "raise":
        opts["policy"] = JobPolicy(timeout=timeout, retries=retries, on_error=on_error)
    compilers = request.config.getoption("--repro-compilers")
    if compilers is not None:
        opts["compilers"] = [name.strip() for name in compilers.split(",") if name.strip()]
    return opts


@pytest.fixture(scope="session")
def checkpoint_for(request):
    """``name -> checkpoint path`` (or None when no checkpoint dir is given).

    Threads ``--repro-checkpoint-dir`` into each ``run_*`` call's
    ``checkpoint`` argument so interrupted benchmark sweeps are resumable.
    """
    checkpoint_dir = request.config.getoption("--repro-checkpoint-dir")

    def _path(name):
        if checkpoint_dir is None:
            return None
        return str(Path(checkpoint_dir) / f"{name}.checkpoint.json")

    return _path


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
