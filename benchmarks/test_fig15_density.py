"""Benchmark regenerating Fig. 15 (highway qubit percentage)."""

from conftest import run_once

from repro.experiments import format_fig15, normalized_by_density, run_fig15


def test_fig15_highway_density(benchmark, repro_scale, engine_opts, checkpoint_for):
    """Doubling the highway must increase the highway-qubit fraction and keep
    the compiled circuits valid; the normalised metrics are reported."""
    records = run_once(
        benchmark, run_fig15, scale=repro_scale, checkpoint=checkpoint_for("fig15"), **engine_opts
    )
    print()
    print(format_fig15(records))

    series = normalized_by_density(records)
    for name, points in series.items():
        fractions = [fraction for _, fraction, _, _ in points]
        assert fractions == sorted(fractions), f"{name}: highway fraction not increasing"
        assert all(depth_ratio > 0 and eff_ratio > 0 for _, _, depth_ratio, eff_ratio in points)
