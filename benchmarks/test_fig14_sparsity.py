"""Benchmark regenerating Fig. 14 (cross-chip link sparsity)."""

from conftest import run_once

from repro.experiments import format_fig14, normalized_by_sparsity, run_fig14


def test_fig14_sparsity(benchmark, repro_scale, engine_opts, checkpoint_for):
    """MECH's normalised depth should not degrade as cross-chip links get sparser."""
    records = run_once(
        benchmark, run_fig14, scale=repro_scale, checkpoint=checkpoint_for("fig14"), **engine_opts
    )
    print()
    print(format_fig14(records))

    series = normalized_by_sparsity(records)
    for name, points in series.items():
        # points are ordered dense -> sparse; the paper reports the normalised
        # depth *decreasing* (MECH is insensitive, the baseline suffers)
        dense_depth = points[0][1]
        sparse_depth = points[-1][1]
        assert sparse_depth <= dense_depth * 1.15, (
            f"{name}: normalised depth degraded under sparse cross-chip links"
        )
