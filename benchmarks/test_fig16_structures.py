"""Benchmark regenerating Fig. 16 (generality across coupling structures)."""

from conftest import run_once

from repro.experiments import format_fig16, normalized_by_structure, run_fig16


def test_fig16_structures(benchmark, repro_scale, engine_opts, checkpoint_for):
    """MECH should work (and keep its eff_CNOT advantage) on all four structures."""
    records = run_once(
        benchmark, run_fig16, scale=repro_scale, checkpoint=checkpoint_for("fig16"), **engine_opts
    )
    print()
    print(format_fig16(records))

    series = normalized_by_structure(records)
    structures_seen = set()
    for name, points in series.items():
        for structure, depth_ratio, eff_ratio in points:
            structures_seen.add(structure)
            assert depth_ratio > 0 and eff_ratio > 0
        if name == "BV":
            assert all(depth_ratio < 1.0 for _, depth_ratio, _ in points)
    assert {"square", "hexagon", "heavy_square", "heavy_hexagon"} <= structures_seen
