"""Benchmark regenerating Fig. 13 (latency / fidelity sensitivity analysis)."""

from conftest import run_once

from repro.experiments import format_fig13, run_fig13


def test_fig13_sensitivity(benchmark, repro_scale, engine_opts, checkpoint_for):
    """Regenerate the three sensitivity panels and check their monotone trends."""
    results = run_once(
        benchmark, run_fig13, scale=repro_scale, checkpoint=checkpoint_for("fig13"), **engine_opts
    )
    print()
    print(format_fig13(results))

    for r in results:
        # (a) depth improvement decreases (roughly linearly) with measurement latency
        latencies = [impr for _, impr in r.depth_vs_latency]
        assert latencies[0] >= latencies[-1] - 1e-9, f"{r.benchmark}: latency trend reversed"
        # (b) eff_CNOT improvement decreases with noisier measurements
        meas = [impr for _, impr in r.eff_vs_meas_error]
        assert meas[0] >= meas[-1] - 1e-9, f"{r.benchmark}: measurement-error trend reversed"
        # (c) eff_CNOT improvement increases with noisier cross-chip links
        cross = [impr for _, impr in r.eff_vs_cross_error]
        assert cross[-1] >= cross[0] - 1e-9, f"{r.benchmark}: cross-chip trend reversed"
